"""Deterministic discrete-event simulation kernel.

This module is the substrate every distributed component in the
reproduction runs on.  The paper evaluated Sedna on a 9-server gigabit
cluster; we do not have that hardware, so nodes, clients, ZooKeeper
ensemble members and trigger scanner threads all run as *processes* on a
single deterministic event loop whose clock is simulated time in
seconds.

The design follows the SimPy process-interaction style (generators that
``yield`` events), but is implemented from scratch and trimmed to what
the reproduction needs:

* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — a generator-based coroutine driven by the loop.
* :class:`AnyOf` / :class:`AllOf` — condition events for fan-in waits
  (quorum waits, RPC-with-timeout races).
* :class:`Simulator` — the event loop itself.

Determinism: event ordering is a strict ``(time, priority, sequence)``
total order, so two runs with the same seed produce byte-identical
traces.  Per the HPC guides, the hot path (the heap loop) avoids
allocation where it can and the kernel is profiled by
``benchmarks/test_kernel_overhead.py``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yielding foreign events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Priorities: lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at
    the current simulated time.  Waiting processes resume with the
    event's ``value`` (or have the failure exception thrown in).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._scheduled = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True/False after trigger (success/failure), None before."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or the failure exception."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered or self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered or self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        # A Timeout's outcome is known up front, but it only counts as
        # *triggered* when its simulated instant is reached (step()).
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class _Initialize(Event):
    """Internal: kicks a new process on the next loop iteration."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, URGENT, 0.0)


class Process(Event):
    """A generator-based coroutine.

    The process *is itself an event* that triggers when the generator
    returns (value = the ``return`` value) or raises (failure).  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself synchronously")
        # Detach from whatever we were waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_ev = Event(self.sim)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev.fail(Interrupt(cause))
        # Mark so _resume throws instead of sending.

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._target = None
        sim = self.sim
        sim._active_process = self
        if event is None or event._ok:
            deliver_exc: Optional[BaseException] = None
            deliver_val = None if event is None else event._value
        else:
            deliver_exc = event._value
            deliver_val = None
        try:
            while True:
                try:
                    if deliver_exc is None:
                        nxt = self._generator.send(deliver_val)
                    else:
                        nxt = self._generator.throw(deliver_exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as err:
                    if isinstance(err, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(err)
                    return
                if not isinstance(nxt, Event) or nxt.sim is not sim:
                    deliver_exc = SimulationError(
                        f"process {self.name!r} yielded invalid target {nxt!r}")
                    deliver_val = None
                    continue
                if nxt.callbacks is None:
                    # Already processed: resume immediately with its outcome.
                    if nxt._ok:
                        deliver_exc, deliver_val = None, nxt._value
                    else:
                        deliver_exc, deliver_val = nxt._value, None
                    continue
                nxt.callbacks.append(self._resume)
                self._target = nxt
                return
        finally:
            sim._active_process = None


class _Condition(Event):
    """Base for :class:`AnyOf`/:class:`AllOf` fan-in events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
            if self._triggered:
                break

    def _collect(self) -> dict:
        """Outcomes of all triggered-and-successful child events so far."""
        return {ev: ev._value for ev in self.events
                if ev._triggered and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as one child event triggers.

    A failing child fails the condition.  Value is a dict of the
    triggered children's values (there may be more than one if several
    trigger at the same timestamp before callbacks run).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every child event has triggered.

    A failing child fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The deterministic event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        # Opt-in observation hook (repro.analysis.hazards).  When set,
        # the kernel reports every schedule and step; the plain path
        # pays one ``is None`` check per operation.
        self.tracer: Optional[Any] = None

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event: first child to trigger wins."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event: triggers when all children have."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue,
                       (self.now + delay, priority, next(self._seq), event))
        if self.tracer is not None:
            self.tracer.on_schedule(event, priority, self.now + delay)

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` without spawning a process."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self.now = when
        event._triggered = True
        tracer = self.tracer
        if tracer is not None:
            tracer.on_step(event, when, _prio)
        callbacks = event.callbacks
        if callbacks is None:
            if tracer is not None:
                tracer.on_step_done(event)
            return  # defused: a waiter explicitly abandoned this event
        event.callbacks = None
        if tracer is None:
            for cb in callbacks:
                cb(event)
        else:
            try:
                for cb in callbacks:
                    cb(event)
            finally:
                tracer.on_step_done(event)
        if event._ok is False and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error loudly
            # instead of losing it (mirrors SimPy semantics).
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the loop.

        * ``until=None`` — run until the queue drains.
        * ``until=<float>`` — run until simulated time reaches it.
        * ``until=<Event>`` — run until that event is processed and
          return its value (re-raising on failure).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran dry before the awaited event triggered")
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError("cannot run into the past")
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self.now = horizon
            return None
        while self._queue:
            self.step()
        return None
