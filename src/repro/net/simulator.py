"""Deterministic discrete-event simulation kernel.

This module is the substrate every distributed component in the
reproduction runs on.  The paper evaluated Sedna on a 9-server gigabit
cluster; we do not have that hardware, so nodes, clients, ZooKeeper
ensemble members and trigger scanner threads all run as *processes* on a
single deterministic event loop whose clock is simulated time in
seconds.

The design follows the SimPy process-interaction style (generators that
``yield`` events), but is implemented from scratch and trimmed to what
the reproduction needs:

* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — a generator-based coroutine driven by the loop.
* :class:`AnyOf` / :class:`AllOf` — condition events for fan-in waits
  (quorum waits, RPC-with-timeout races).
* :class:`RecurringTimer` — a reusable timeout for the homogeneous
  periodic streams (gossip beats, lease renewals, trigger scans) that
  would otherwise allocate one fresh :class:`Timeout` per tick.
* :class:`Simulator` — the event loop itself.

Determinism: event ordering is a strict ``(time, priority, sequence)``
total order, so two runs with the same seed produce byte-identical
traces.

Hot-path discipline (per the HPC guides: measure, then flatten): in
CPython the costs that matter at these event rates are interpreter
frames and C-heap traffic, so

* ``sim.timeout`` builds the event inline — no ``type.__call__`` →
  ``__init__`` → ``_schedule`` chain;
* ``run`` dispatches callbacks inline — no per-event ``step`` frame;
* the queue keeps its *minimum entry* in a buffer slot (``_nbuf``)
  beside the heap, so the dominant schedule-fire-schedule rhythm of
  timeout chains never touches ``heappush``/``heappop`` (~220 ns per
  event pair measured) while preserving the exact pop order — the
  buffer always holds the global minimum, ties impossible because
  sequence numbers are unique.

Every change here is guarded by the golden digest fixtures
(``tests/chaos/test_golden_digests.py``) — the total order must not
move by a single event.  The kernel is profiled by
``benchmarks/test_kernel_overhead.py``.
"""

from __future__ import annotations

from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "RecurringTimer",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yielding foreign events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Priorities: lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at
    the current simulated time.  Waiting processes resume with the
    event's ``value`` (or have the failure exception thrown in).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._scheduled = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True/False after trigger (success/failure), None before."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or the failure exception."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        try:
            already = self._triggered or self._scheduled
        except AttributeError:
            # A hot-constructed Timeout leaves _scheduled unset (it is
            # scheduled by construction) — see Simulator.timeout.
            already = True
        if already:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # Inlined buffered push (hot: every event trigger).
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        entry = (sim.now, NORMAL, seq, self)
        buf = sim._nbuf
        if buf is None:
            sim._nbuf = entry
        elif entry < buf:
            heappush(sim._queue, buf)
            sim._nbuf = entry
        else:
            heappush(sim._queue, entry)
        if sim.tracer is not None:
            sim.tracer.on_schedule(self, NORMAL, sim.now)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        try:
            already = self._triggered or self._scheduled
        except AttributeError:
            already = True
        if already:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        entry = (sim.now, NORMAL, seq, self)
        buf = sim._nbuf
        if buf is None:
            sim._nbuf = entry
        elif entry < buf:
            heappush(sim._queue, buf)
            sim._nbuf = entry
        else:
            heappush(sim._queue, entry)
        if sim.tracer is not None:
            sim.tracer.on_schedule(self, NORMAL, sim.now)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` seconds in the future.

    Note: ``sim.timeout(...)`` is the hot constructor — it builds the
    object inline without this ``__init__`` (see :meth:`Simulator.timeout`).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.sim = sim
        self.callbacks = []
        # A Timeout's outcome is known up front, but it only counts as
        # *triggered* when its simulated instant is reached.
        self._value = value
        self._ok = True
        self._triggered = False
        self._scheduled = True
        self.delay = delay
        sim._push(self, NORMAL, delay)


# Preresolved allocator for Simulator.timeout: skips the LOAD_ATTR on
# Timeout.__new__ per call (partial dispatches straight into C).
_make_timeout = partial(Timeout.__new__, Timeout)


class _Initialize(Event):
    """Internal: kicks a new process on the next loop iteration."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume_cb)
        sim._schedule(self, URGENT, 0.0)


class Process(Event):
    """A generator-based coroutine.

    The process *is itself an event* that triggers when the generator
    returns (value = the ``return`` value) or raises (failure).  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # The resume callback is registered on every event this process
        # ever waits on; materializing the bound method once instead of
        # per yield saves an allocation per wait.
        self._resume_cb = self._resume
        # _target doubles as the resume guard: _resume only acts on the
        # event the process is actually waiting for (see interrupt()).
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  A process blocked
        on an event is *logically* detached from it: the stale callback
        stays in the event's list (removing it was an O(waiters) list
        scan) but is defused by the ``_target`` guard in
        :meth:`_resume` — when the abandoned event later fires, the
        stale resume is discarded.  The same guard defuses a scheduled
        interrupt whose process was terminated first at the same
        timestamp (e.g. by an earlier interrupt), which previously
        advanced a finished generator and crashed the kernel; when
        several interrupts race at one instant, the latest cause wins.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself synchronously")
        interrupt_ev = Event(self.sim)
        interrupt_ev.callbacks.append(self._resume_cb)
        # Re-aim the guard *before* fail(): the old target (and any
        # previously scheduled interrupt) is now stale and will be
        # dropped by the guard instead of double-resuming us.
        self._target = interrupt_ev
        interrupt_ev.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if event is not self._target:
            # Stale wakeup: an event this process abandoned (interrupt,
            # or an interrupt outrun by the process finishing at the
            # same timestamp).  Mark-defused instead of list-removal.
            return
        self._target = None
        sim = self.sim
        if event._ok:
            deliver_exc: Optional[BaseException] = None
            deliver_val = event._value
        else:
            deliver_exc = event._value
            deliver_val = None
        generator = self._generator
        resume_cb = self._resume_cb
        while True:
            try:
                if deliver_exc is None:
                    nxt = generator.send(deliver_val)
                else:
                    nxt = generator.throw(deliver_exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as err:
                if isinstance(err, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(err)
                return
            # Duck-validate the yield: anything without our kernel's
            # event shape (sim + callbacks slots) — or owned by another
            # simulator — is an invalid target.  Attribute probing is
            # free on the valid path (no isinstance call); the raise is
            # only taken on misuse.
            try:
                if nxt.sim is not sim:
                    raise AttributeError
                cbs = nxt.callbacks
            except AttributeError:
                deliver_exc = SimulationError(
                    f"process {self.name!r} yielded invalid target {nxt!r}")
                deliver_val = None
                continue
            if cbs is None:
                # Already processed: resume immediately with its outcome.
                if nxt._ok:
                    deliver_exc, deliver_val = None, nxt._value
                else:
                    deliver_exc, deliver_val = nxt._value, None
                continue
            cbs.append(resume_cb)
            self._target = nxt
            return


class RecurringTimer:
    """A reusable timeout for homogeneous periodic event streams.

    Gossip beats, lease renewals, failure-detector probes and trigger
    scans all run ``while True: yield sim.timeout(interval)`` loops —
    each tick allocates and initializes a fresh :class:`Timeout` that
    lives for exactly one loop iteration.  A ``RecurringTimer`` batches
    that stream onto **one** recycled event object::

        timer = sim.recurring(0.05)
        while True:
            yield timer.tick()          # same delay every tick
            ...
        # or timer.tick(other_delay) for drifting periods

    Scheduling behaviour is byte-identical to the ``timeout()`` loop:
    every tick consumes one sequence number and enters the queue as one
    ``(now + delay, NORMAL, seq)`` entry, so histories and digests do
    not move.  The only change is allocation: the event object (and its
    slots) is reused across ticks instead of being rebuilt.

    When a kernel tracer is attached (hazard detection, span tracing)
    the timer transparently degrades to fresh :class:`Timeout` objects,
    because tracers key their happens-before graphs on event identity
    and must never see the same object twice.
    """

    __slots__ = ("sim", "interval", "_event")

    def __init__(self, sim: "Simulator", interval: float) -> None:
        if interval < 0:
            raise SimulationError(f"negative interval {interval}")
        self.sim = sim
        self.interval = interval
        self._event: Optional[Timeout] = None

    def tick(self, delay: Optional[float] = None) -> Event:
        """Arm the timer ``delay`` (default: the interval) seconds out."""
        d = self.interval if delay is None else delay
        sim = self.sim
        ev = self._event
        if ev is None or ev.callbacks is not None or sim.tracer is not None:
            # First use, previous tick still pending (two waiters would
            # alias), or a tracer needs fresh identities: plain Timeout.
            ev = sim.timeout(d)
            self._event = ev
            return ev
        # Re-arm the processed event in place.
        if d < 0:
            raise SimulationError(f"negative delay {d}")
        ev.callbacks = []
        ev._value = None
        ev._ok = True
        ev._triggered = False
        ev._scheduled = True
        ev.delay = d
        sim._push(ev, NORMAL, d)
        return ev


class _Condition(Event):
    """Base for :class:`AnyOf`/:class:`AllOf` fan-in events.

    Child outcomes are collected *incrementally*: each ok child is
    recorded by its own ``_check`` callback, so deciding never rescans
    the full child tuple.  The decide-time semantics of the original
    full scan (any child that had *triggered* by then is included, even
    if its callbacks had not run yet) are preserved by topping the
    incremental dict up with still-unrecorded triggered children.
    """

    __slots__ = ("events", "_count", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        self._values: dict[Event, Any] = {}
        if not self.events:
            self.succeed(self._values)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
            if self._triggered:
                break

    def _collect(self) -> dict:
        """Outcomes of all triggered-and-successful child events so far."""
        values = self._values
        for ev in self.events:
            if ev._triggered and ev._ok and ev not in values:
                values[ev] = ev._value
        return values

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as one child event triggers.

    A failing child fails the condition.  Value is a dict of the
    triggered children's values (there may be more than one if several
    trigger at the same timestamp before callbacks run).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self._values[event] = event._value
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every child event has triggered.

    A failing child fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._values[event] = event._value
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The deterministic event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"

    Attach observation hooks (``tracer``) while the loop is idle — the
    run loops latch the no-tracer fast path per ``run()`` call.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # The pending-event queue: a binary heap of (time, priority,
        # seq, event) tuples PLUS the buffer slot `_nbuf`, which holds
        # the entry that would be at the heap top (or None).  Pushes
        # land in the buffer when they beat it; pops prefer it.  The
        # schedule-fire-schedule rhythm of timeout chains then runs
        # entirely through the slot, skipping both heap operations.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._nbuf: Optional[tuple[float, int, int, Event]] = None
        self._seq = 0
        # Opt-in observation hook (repro.analysis.hazards).  When set,
        # the kernel reports every schedule and step; the plain path
        # pays one ``is None`` check per operation.
        self.tracer: Optional[Any] = None

    @property
    def events_scheduled(self) -> int:
        """Total events pushed through the queue (perf accounting)."""
        return self._seq

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now.

        This is the kernel's hottest allocation; the object is built
        and enqueued inline (no ``type.__call__`` → ``__init__`` →
        ``_schedule`` chain, no heap traffic when the buffer slot is
        free) — worth ~35% kernel throughput combined.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        t: Timeout = _make_timeout()
        t.sim = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t._triggered = False
        # _scheduled is deliberately left unset: a Timeout is scheduled
        # by construction, and succeed()/fail() treat the missing slot
        # as "already in the queue" (one fewer store per event here).
        t.delay = delay
        self._seq = seq = self._seq + 1
        when = self.now + delay
        entry = (when, NORMAL, seq, t)
        buf = self._nbuf
        if buf is None:
            self._nbuf = entry
        elif entry < buf:
            heappush(self._queue, buf)
            self._nbuf = entry
        else:
            heappush(self._queue, entry)
        if self.tracer is not None:
            self.tracer.on_schedule(t, NORMAL, when)
        return t

    def recurring(self, interval: float) -> RecurringTimer:
        """A reusable timer for periodic loops (see :class:`RecurringTimer`)."""
        return RecurringTimer(self, interval)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event: first child to trigger wins."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event: triggers when all children have."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _push(self, event: Event, priority: int, delay: float) -> None:
        """Enqueue ``event`` (already marked scheduled) ``delay`` out."""
        self._seq = seq = self._seq + 1
        when = self.now + delay
        entry = (when, priority, seq, event)
        buf = self._nbuf
        if buf is None:
            self._nbuf = entry
        elif entry < buf:
            heappush(self._queue, buf)
            self._nbuf = entry
        else:
            heappush(self._queue, entry)
        if self.tracer is not None:
            self.tracer.on_schedule(event, priority, when)

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._push(event, priority, delay)

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` without spawning a process."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- execution -------------------------------------------------------------
    def _pop(self) -> tuple[float, int, int, Event]:
        """Take the next entry (buffer slot first).  IndexError when empty."""
        buf = self._nbuf
        queue = self._queue
        if buf is not None:
            if queue and queue[0] < buf:
                return heappop(queue)
            self._nbuf = None
            return buf
        return heappop(queue)

    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        when, prio, _seq, event = self._pop()
        self.now = when
        event._triggered = True
        tracer = self.tracer
        if tracer is not None:
            tracer.on_step(event, when, prio)
        callbacks = event.callbacks
        if callbacks is None:
            if tracer is not None:
                tracer.on_step_done(event)
            return  # defused: a waiter explicitly abandoned this event
        event.callbacks = None
        if tracer is None:
            for cb in callbacks:
                cb(event)
        else:
            try:
                for cb in callbacks:
                    cb(event)
            finally:
                tracer.on_step_done(event)
        if event._ok is False and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error loudly
            # instead of losing it (mirrors SimPy semantics).
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        buf = self._nbuf
        if buf is not None:
            return buf[0] if not self._queue or buf < self._queue[0] \
                else self._queue[0][0]
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the loop.

        * ``until=None`` — run until the queue drains.
        * ``until=<float>`` — run until simulated time reaches it.
        * ``until=<Event>`` — run until that event is processed and
          return its value (re-raising on failure).

        The no-tracer paths below inline :meth:`step` (pop, clock
        advance, callback dispatch): the per-event method indirection
        costs ~15% of kernel throughput at these event rates.
        """
        if self.tracer is not None:
            return self._run_traced(until)
        queue = self._queue
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                buf = self._nbuf
                if buf is not None:
                    if queue and queue[0] < buf:
                        entry = heappop(queue)
                    else:
                        self._nbuf = None
                        entry = buf
                elif queue:
                    entry = heappop(queue)
                else:
                    raise SimulationError(
                        "simulation ran dry before the awaited event triggered")
                event = entry[3]
                self.now = entry[0]
                event._triggered = True
                callbacks = event.callbacks
                if callbacks is None:
                    continue
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for cb in callbacks:
                        cb(event)
                if event._ok is False and not callbacks and not isinstance(event, Process):
                    raise event._value
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError("cannot run into the past")
            while True:
                buf = self._nbuf
                if buf is not None and (not queue or buf < queue[0]):
                    if buf[0] > horizon:
                        break
                    self._nbuf = None
                    entry = buf
                elif queue:
                    if queue[0][0] > horizon:
                        break
                    entry = heappop(queue)
                else:
                    break
                event = entry[3]
                self.now = entry[0]
                event._triggered = True
                callbacks = event.callbacks
                if callbacks is None:
                    continue
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for cb in callbacks:
                        cb(event)
                if event._ok is False and not callbacks and not isinstance(event, Process):
                    raise event._value
            self.now = horizon
            return None
        while True:
            buf = self._nbuf
            if buf is not None:
                if queue and queue[0] < buf:
                    entry = heappop(queue)
                else:
                    self._nbuf = None
                    entry = buf
            elif queue:
                entry = heappop(queue)
            else:
                return None
            event = entry[3]
            self.now = entry[0]
            event._triggered = True
            callbacks = event.callbacks
            if callbacks is None:
                continue
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
            if event._ok is False and not callbacks and not isinstance(event, Process):
                raise event._value

    def _run_traced(self, until: Optional[float | Event]) -> Any:
        """The observed run loop: one ``step()`` frame per event so the
        tracer sees every schedule/step/step-done transition."""
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if self._nbuf is None and not self._queue:
                    raise SimulationError(
                        "simulation ran dry before the awaited event triggered")
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError("cannot run into the past")
            while self.peek() <= horizon:
                self.step()
            self.now = horizon
            return None
        while self._nbuf is not None or self._queue:
            self.step()
        return None
