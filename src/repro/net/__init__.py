"""Simulated network substrate: DES kernel, transport, RPC, failures.

This package replaces the paper's physical 9-server gigabit testbed
with a deterministic discrete-event simulation (see DESIGN.md §2 for
the substitution rationale).
"""

from .simulator import (AllOf, AnyOf, Event, Interrupt, Process,
                        SimulationError, Simulator, Timeout)
from .latency import LanGigabit, LatencyModel, NoLatency, UniformLatency
from .transport import Endpoint, Message, Network, estimate_size
from .rpc import (QuorumWait, RpcError, RpcNode, RpcRejected, RpcTimeout,
                  gather_quorum)
from .failure import FailureInjector, MessageLoss, Partition
from .tap import NetworkTap, TapRecord

__all__ = [
    "AllOf", "AnyOf", "Event", "Interrupt", "Process", "SimulationError",
    "Simulator", "Timeout",
    "LanGigabit", "LatencyModel", "NoLatency", "UniformLatency",
    "Endpoint", "Message", "Network", "estimate_size",
    "QuorumWait", "RpcError", "RpcNode", "RpcRejected", "RpcTimeout",
    "gather_quorum",
    "FailureInjector", "MessageLoss", "Partition",
    "NetworkTap", "TapRecord",
]
