"""Message transport over the simulated network.

A :class:`Network` connects named endpoints.  Each endpoint owns an
inbox; ``send`` schedules delivery after the latency model's delay and
the failure injector's verdict.  Components built on top (the RPC layer,
Sedna nodes, the ZooKeeper ensemble) never talk to the simulator
directly for messaging — everything goes through here so partitions,
crashes and message drops apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .latency import LatencyModel, LanGigabit
from .simulator import Event, Simulator

__all__ = ["Message", "Endpoint", "Network", "estimate_size"]


def estimate_size(payload: Any) -> int:
    """Rough wire size in bytes of a message payload.

    Good enough for the bandwidth term of the latency model: strings and
    bytes count their length, numbers 8 bytes, containers add a small
    per-item framing overhead.

    This runs once per transmitted message — the hottest non-kernel
    function in the simulator (profiled at ~1/3 of a benchmark run in
    its recursive form), hence the explicit work-stack and fast paths.
    """
    total = 0
    stack = [(payload, 0)]
    push = stack.append
    while stack:
        obj, depth = stack.pop()
        kind = type(obj)
        if kind is str:
            # ASCII-dominated payloads: len() is the byte count.
            total += len(obj)
        elif kind is int or kind is float:
            total += 8
        elif kind is bytes:
            total += len(obj)
        elif kind is dict:
            total += 8
            if depth <= 6:
                for k, v in obj.items():
                    push((k, depth + 1))
                    push((v, depth + 1))
            else:
                total += 16 * len(obj)
        elif kind is list or kind is tuple:
            total += 8
            if depth <= 6:
                for v in obj:
                    push((v, depth + 1))
            else:
                total += 16 * len(obj)
        elif obj is None:
            total += 1
        elif kind is bool:
            total += 1
        elif isinstance(obj, (bytearray, memoryview)):
            total += len(obj)
        elif isinstance(obj, (set, frozenset)):
            total += 8
            if depth <= 6:
                for v in obj:
                    push((v, depth + 1))
        elif isinstance(obj, (int, float, str, bytes)):  # subclasses
            total += len(obj) if isinstance(obj, (str, bytes)) else 8
        else:
            d = getattr(obj, "__dict__", None)
            if d:
                total += 16
                push((d, depth + 1))
            else:
                total += 32
    return total


@dataclass
class Message:
    """A delivered message: who sent it, to whom, and the payload.

    ``trace`` is the observability trace id active when the message
    was transmitted (None when tracing is off) — metadata for taps and
    timelines, never serialized, so it adds nothing to ``size``.
    """

    src: str
    dst: str
    payload: Any
    sent_at: float = 0.0
    delivered_at: float = 0.0
    size: int = 0
    trace: Optional[int] = None


class Endpoint:
    """A named network endpoint with an inbox.

    Handlers may be attached with :meth:`on_message`; otherwise
    processes pull messages with :meth:`recv` (an event yielding the
    next message).  An endpoint can be taken *down* to simulate a crash:
    messages to a down endpoint vanish, and sends from it raise.
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.up = True
        self._handler: Optional[Callable[[Message], None]] = None
        self._waiters: list[Event] = []
        self._backlog: list[Message] = []
        # Counters for the stats module.
        self.sent_count = 0
        self.recv_count = 0
        self.sent_bytes = 0
        self.recv_bytes = 0

    # -- sending ------------------------------------------------------------
    def send(self, dst: str, payload: Any) -> None:
        """Send ``payload`` to the endpoint named ``dst``."""
        if not self.up:
            raise RuntimeError(f"endpoint {self.name} is down")
        self.network._transmit(self, dst, payload)

    # -- receiving ----------------------------------------------------------
    def on_message(self, handler: Callable[[Message], None]) -> None:
        """Install a push handler; drains any backlog immediately."""
        self._handler = handler
        while self._backlog and self._handler is not None:
            self._handler(self._backlog.pop(0))

    def recv(self) -> Event:
        """Event that succeeds with the next :class:`Message`."""
        ev = self.network.sim.event()
        if self._backlog:
            ev.succeed(self._backlog.pop(0))
        else:
            self._waiters.append(ev)
        return ev

    def _deliver(self, msg: Message) -> None:
        if not self.up:
            return  # crashed endpoints silently drop traffic
        self.recv_count += 1
        self.recv_bytes += msg.size
        if self._handler is not None:
            self._handler(msg)
            return
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed(msg)
                return
        self._backlog.append(msg)

    # -- lifecycle ------------------------------------------------------------
    def crash(self) -> None:
        """Take the endpoint down; in-flight and future messages are lost."""
        self.up = False
        self._backlog.clear()

    def restart(self) -> None:
        """Bring the endpoint back up (state recovery is the owner's job)."""
        self.up = True


class Network:
    """The simulated network joining all endpoints.

    Parameters
    ----------
    sim:
        The simulation kernel.
    latency:
        The :class:`~repro.net.latency.LatencyModel`; defaults to the
        paper-calibrated gigabit LAN.
    """

    def __init__(self, sim: Simulator,
                 latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else LanGigabit()
        self.endpoints: dict[str, Endpoint] = {}
        self._filters: list[Callable[[str, str, Any], bool]] = []
        self.delivered = 0
        self.dropped = 0
        # Span tracer (repro.obs.trace.SpanTracer) when request tracing
        # is wired up; messages sent inside a traced context carry its
        # trace id so taps can slice traffic per request.
        self.tracer: Optional[Any] = None

    def endpoint(self, name: str) -> Endpoint:
        """Create (or return) the endpoint called ``name``."""
        ep = self.endpoints.get(name)
        if ep is None:
            ep = Endpoint(self, name)
            self.endpoints[name] = ep
        return ep

    def add_filter(self, fn: Callable[[str, str, Any], bool]) -> None:
        """Install a drop filter ``fn(src, dst, payload) -> deliver?``.

        Used by :mod:`repro.net.failure` for partitions and loss.
        """
        self._filters.append(fn)

    def remove_filter(self, fn: Callable[[str, str, Any], bool]) -> None:
        """Remove a previously installed drop filter."""
        self._filters.remove(fn)

    def _transmit(self, src: Endpoint, dst: str, payload: Any) -> None:
        size = estimate_size(payload)
        src.sent_count += 1
        src.sent_bytes += size
        for flt in self._filters:
            if not flt(src.name, dst, payload):
                self.dropped += 1
                return
        target = self.endpoints.get(dst)
        if target is None or not target.up:
            self.dropped += 1
            return
        trace = (self.tracer.current_trace_id()
                 if self.tracer is not None else None)
        msg = Message(src=src.name, dst=dst, payload=payload,
                      sent_at=self.sim.now, size=size, trace=trace)
        delay = self.latency.delay(size)

        def deliver() -> None:
            msg.delivered_at = self.sim.now
            self.delivered += 1
            tgt = self.endpoints.get(dst)
            if tgt is not None:
                tgt._deliver(msg)

        self.sim.schedule_callback(delay, deliver)
