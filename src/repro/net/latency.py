"""Network and CPU time models calibrated to the paper's testbed.

The paper's cluster: 9 servers, Xeon dual-core 2.53 GHz, 6 GB RAM,
single gigabit Ethernet, same hosting facility, round-trip time between
any pair of machines below one millisecond (§VI.A).

We model one-way message delivery time as::

    delay = propagation + size_bytes / bandwidth + jitter

with ``propagation`` around 60–150 µs (consistent with sub-millisecond
RTT), gigabit bandwidth (125 MB/s), and small log-normal-ish jitter
drawn from a seeded :class:`random.Random` so runs stay deterministic.

Local store operation costs (hash + slab memory touch) are modelled in
the tens of microseconds, matching memcached-class engines on 2009-era
Xeons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["LatencyModel", "LanGigabit", "UniformLatency", "NoLatency"]


@dataclass
class LatencyModel:
    """Base latency model: fixed propagation plus bandwidth term.

    Attributes
    ----------
    propagation:
        One-way wire+switch latency in seconds.
    bandwidth:
        Link bandwidth in bytes/second (serialization term).
    jitter:
        Max additional uniform jitter in seconds.
    seed:
        Seed for the deterministic jitter stream.
    """

    propagation: float = 100e-6
    bandwidth: float = 125e6
    jitter: float = 20e-6
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, size_bytes: int) -> float:
        """One-way delivery delay for a message of ``size_bytes``."""
        base = self.propagation + size_bytes / self.bandwidth
        if self.jitter > 0.0:
            base += self._rng.random() * self.jitter
        return base


@dataclass
class LanGigabit(LatencyModel):
    """The paper's testbed: gigabit LAN, sub-ms RTT, same facility."""

    propagation: float = 120e-6
    bandwidth: float = 125e6
    jitter: float = 30e-6


@dataclass
class UniformLatency(LatencyModel):
    """Uniform latency in ``[propagation, propagation + jitter]``; no bandwidth term."""

    bandwidth: float = float("inf")

    def delay(self, size_bytes: int) -> float:
        return self.propagation + self._rng.random() * self.jitter


@dataclass
class NoLatency(LatencyModel):
    """Zero-delay model for logic-only tests."""

    propagation: float = 0.0
    jitter: float = 0.0

    def delay(self, size_bytes: int) -> float:
        return 0.0


# CPU service-time constants (seconds), used by the storage engine and
# node logic.  Calibrated so a single-client uninterleaved request loop
# lands in the paper's Fig. 7 range (tens of thousands of small ops in
# tens of seconds, i.e. ~0.5-2 ms per op end to end) and a nine-client
# run saturates server CPUs the way Fig. 8 shows (~2x per-client
# slowdown).  The 2009-era testbed ran Java services on dual-core
# 2.53 GHz Xeons, hence the relatively fat per-request costs.
LOCAL_STORE_OP = 15e-6        # one in-process hash-table + slab operation
MEMCACHED_OP = 100e-6         # memcached server: parse + store + respond
REQUEST_HANDLING = 150e-6     # Sedna service: decode/version/dirty/respond
ZK_READ_OP = 30e-6            # ZK in-memory tree read
ZK_WRITE_OP = 300e-6          # ZK quorum write (leader + majority ack)
