"""Network tap: record message flows for assertions and debugging.

Protocol tests want claims like "one quorum write costs exactly N
replica messages" or "the ZooKeeper changelog refresh touched only two
znodes".  :class:`NetworkTap` observes every transmitted message (via a
pass-through filter, so nothing is dropped) and offers counting and
querying helpers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .transport import Network

__all__ = ["TapRecord", "NetworkTap"]


@dataclass(frozen=True)
class TapRecord:
    """One observed transmission (pre-delivery, post-filter order).

    ``trace`` is the observability trace id active at transmit time
    (None when request tracing is off) — it lets protocol tests slice
    the tap down to a single request's traffic.
    """

    time: float
    src: str
    dst: str
    kind: str
    method: str
    trace: Optional[int] = None


def _classify(payload: Any) -> tuple[str, str]:
    if isinstance(payload, dict):
        kind = payload.get("kind", "")
        if kind == "req":
            return "req", str(payload.get("method", ""))
        if kind == "resp":
            return "resp", ""
        if kind == "notify":
            body = payload.get("body")
            if isinstance(body, dict):
                return "notify", str(body.get("zk", ""))
            return "notify", ""
        if "bytes" in payload:
            return "wire", ""
    return "raw", ""


class NetworkTap:
    """Attachable message recorder.

    ::

        tap = NetworkTap(cluster.network)
        ... run workload ...
        assert tap.count(method="replica.write") == 3
        tap.detach()
    """

    def __init__(self, network: Network,
                 predicate: Optional[Callable[[TapRecord], bool]] = None,
                 on_record: Optional[Callable[[TapRecord], None]] = None,
                 keep_records: bool = True,
                 max_records: Optional[int] = None) -> None:
        self.network = network
        self.predicate = predicate
        self.on_record = on_record
        self.keep_records = keep_records
        #: With ``max_records`` set the buffer is a ring holding only
        #: the most recent transmissions (flight-recorder taps stay
        #: O(1) in memory over arbitrarily long runs); unbounded
        #: otherwise.  Assertion helpers work on either.
        self.records: Any = ([] if max_records is None
                             else deque(maxlen=max_records))
        self._attached = True
        network.add_filter(self._observe)

    def _observe(self, src: str, dst: str, payload: Any) -> bool:
        kind, method = _classify(payload)
        tracer = self.network.tracer
        trace = tracer.current_trace_id() if tracer is not None else None
        record = TapRecord(time=self.network.sim.now, src=src, dst=dst,
                           kind=kind, method=method, trace=trace)
        if self.predicate is None or self.predicate(record):
            if self.keep_records:
                self.records.append(record)
            if self.on_record is not None:
                # Streaming hook: history recorders (repro.chaos) tally
                # message flows without buffering every transmission.
                self.on_record(record)
        return True  # pass-through: taps never drop traffic

    def detach(self) -> None:
        """Stop recording."""
        if self._attached:
            self.network.remove_filter(self._observe)
            self._attached = False

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.records.clear()

    def reset(self) -> int:
        """Start a fresh observation window.

        Clears the recorded transmissions and returns how many were
        dropped — the idiom for "settle the cluster, reset, then assert
        on exactly the traffic the next operation causes"."""
        dropped = len(self.records)
        self.records.clear()
        return dropped

    # -- queries ----------------------------------------------------------
    def count(self, src: Optional[str] = None, dst: Optional[str] = None,
              kind: Optional[str] = None, method: Optional[str] = None,
              trace: Optional[int] = None) -> int:
        """Records matching all given criteria."""
        return len(self.select(src=src, dst=dst, kind=kind, method=method,
                               trace=trace))

    def select(self, src: Optional[str] = None, dst: Optional[str] = None,
               kind: Optional[str] = None, method: Optional[str] = None,
               trace: Optional[int] = None) -> list[TapRecord]:
        """Filtered view of the recorded transmissions."""
        out = []
        for record in self.records:
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            if kind is not None and record.kind != kind:
                continue
            if method is not None and record.method != method:
                continue
            if trace is not None and record.trace != trace:
                continue
            out.append(record)
        return out

    def between(self, a: str, b: str) -> list[TapRecord]:
        """Transmissions between two endpoints, either direction."""
        return [record for record in self.records
                if (record.src == a and record.dst == b)
                or (record.src == b and record.dst == a)]

    def for_trace(self, trace_id: int) -> list[TapRecord]:
        """Every transmission attributed to one request trace."""
        return [record for record in self.records
                if record.trace == trace_id]

    def methods_histogram(self) -> dict[str, int]:
        """Request count per RPC method (diagnostics)."""
        histogram: dict[str, int] = {}
        for record in self.records:
            if record.kind == "req":
                histogram[record.method] = histogram.get(record.method, 0) + 1
        return histogram
