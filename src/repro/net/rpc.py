"""Request/response RPC over the simulated transport.

Sedna's protocol messages (replica writes, quorum reads, ZooKeeper
calls, heartbeats) are all request/response with timeouts.  This layer
provides:

* :class:`RpcNode` — owns an endpoint, registers named handlers, and
  issues :meth:`call`/:meth:`call_many` with per-call timeouts.
* :class:`RpcError` / :class:`RpcTimeout` / :class:`RpcRejected` —
  the failure vocabulary the paper uses ("timeout", "refuse").

Handlers may answer synchronously (return a value), raise
:class:`RpcRejected` (mapped to a ``refuse`` response), or return a
:class:`~repro.net.simulator.Event` for deferred completion.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .simulator import AnyOf, Event, Simulator
from .transport import Message, Network

__all__ = ["RpcError", "RpcTimeout", "RpcRejected", "LateRegistrationError",
           "RpcNode", "QuorumWait", "gather_quorum"]


class RpcError(Exception):
    """Base class for RPC failures."""


class LateRegistrationError(RuntimeError):
    """A *new* method was registered after the endpoint served traffic.

    The wire surface of a node must be complete before the first
    request is dispatched; otherwise whether a request lands on a
    handler or a ``no-such-method`` refusal depends on delivery order.
    Swapping the handler of an already-registered method stays legal
    (fault injection and tracing wrappers patch the dispatch table),
    as does an explicit ``allow_late=True``.
    """


class RpcTimeout(RpcError):
    """The call did not complete within its timeout (node dead or slow)."""


class RpcRejected(RpcError):
    """The remote node answered ``refuse`` (paper §III.C).

    ``reason`` carries the remote's explanation, e.g. ``"not-owner"``
    after a rebalance moved a virtual node away.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


_REQ = "req"
_RESP = "resp"
_NOTIFY = "notify"


def _observed(_ev: Event) -> None:
    """Shared no-op observer: marks an event's outcome as witnessed so
    the kernel's unhandled-failure alarm stays quiet.  One module-level
    function instead of a fresh lambda per call/wait."""


class RpcNode:
    """An endpoint that speaks request/response.

    Parameters
    ----------
    network:
        The simulated :class:`~repro.net.transport.Network`.
    name:
        Endpoint name (globally unique).
    service_time:
        Seconds of simulated CPU charged before each handler runs,
        modelling request decode/dispatch (paper testbed calibration).
    """

    def __init__(self, network: Network, name: str,
                 service_time: float = 0.0) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.name = name
        self.endpoint = network.endpoint(name)
        self.endpoint.on_message(self._on_message)
        self.service_time = service_time
        self._busy_until = 0.0
        self._handlers: dict[str, Callable[[str, Any], Any]] = {}
        self._served = False
        self._notify_handler: Optional[Callable[[str, Any], None]] = None
        self._pending: dict[int, Event] = {}
        self._last_id = 0
        # Stats
        self.calls_issued = 0
        self.calls_timed_out = 0
        self.requests_served = 0
        # Span tracer (repro.obs.trace.SpanTracer) when request tracing
        # is wired up.  With tracing off, requests carry no extra field
        # and the serve path pays one ``is None`` check.
        self.tracer: Optional[Any] = None

    # -- server side ------------------------------------------------------
    def register(self, method: str, handler: Callable[[str, Any], Any],
                 *, allow_late: bool = False) -> None:
        """Register ``handler(src_name, args)`` for ``method`` requests.

        Raises :class:`LateRegistrationError` when ``method`` is new
        and the endpoint has already served a request; see that class
        for the rationale and the sanctioned exceptions.
        """
        if self._served and method not in self._handlers and not allow_late:
            raise LateRegistrationError(
                f"{self.name}: method {method!r} registered after the "
                f"endpoint served traffic")
        self._handlers[method] = handler

    def _on_message(self, msg: Message) -> None:
        kind = msg.payload.get("kind")
        if kind == _REQ:
            self._serve(msg)
        elif kind == _NOTIFY:
            if self._notify_handler is not None:
                self._notify_handler(msg.src, msg.payload["body"])
        elif kind == _RESP:
            payload = msg.payload
            ev = self._pending.pop(payload["id"], None)
            if ev is not None and not ev._triggered:
                if payload["status"] == "ok":
                    ev.succeed(payload["result"])
                else:
                    ev.fail(RpcRejected(payload.get("result", "")))

    def _serve(self, msg: Message) -> None:
        payload = msg.payload
        method = payload["method"]
        self._served = True
        tracer = self.tracer
        trace_ctx = payload.get("tr") if tracer is not None else None
        serve_span: list[Any] = []
        arrived = self.sim.now

        def respond(status: str, result: Any) -> None:
            if serve_span:
                tracer.finish(serve_span.pop(), status=status)
            if not self.endpoint.up:
                return
            self.endpoint.send(msg.src, {
                "kind": _RESP, "id": payload["id"],
                "status": status, "result": result,
            })

        def execute() -> None:
            # Dispatch-table lookup happens here, at execution time, not
            # at delivery: with a service queue, resolving the handler
            # early would freeze a snapshot of the table and make the
            # two paths (queued vs immediate) observably different.
            handler = self._handlers.get(method)
            if trace_ctx is not None:
                # Re-adopt the caller's context carried in the envelope:
                # the event graph cannot see through the service queue.
                tracer.adopt(trace_ctx)
                span = tracer.begin(f"rpc.{method}", node=self.name)
                if span is not None:
                    # The serve span opens *after* the service queue;
                    # the wait is tagged so the critical-path analyzer
                    # (repro.obs.critical) can attribute queue time
                    # separately from network flight.  Tags are local
                    # span state, never serialized onto the wire.
                    queued = self.sim.now - arrived
                    if queued > 0.0:
                        span.tags["queue"] = round(queued, 9)
                    serve_span.append(span)
            self.requests_served += 1
            if handler is None:
                respond("refuse", f"no-such-method:{method}")
                return
            try:
                result = handler(msg.src, payload["args"])
            except RpcRejected as rej:
                respond("refuse", rej.reason)
                return
            if isinstance(result, Event):
                def finish(ev: Event) -> None:
                    if ev.ok:
                        respond("ok", ev.value)
                    else:
                        exc = ev.value
                        respond("refuse",
                                exc.reason if isinstance(exc, RpcRejected) else repr(exc))
                if result.callbacks is None:
                    finish(result)
                else:
                    result.callbacks.append(finish)
            else:
                respond("ok", result)

        if self.service_time > 0.0:
            # Single service queue: concurrent requests line up (this is
            # what makes the paper's Fig. 8 multi-client contention
            # reproducible — servers have finite CPU).
            start = max(self.sim.now, self._busy_until)
            self._busy_until = start + self.service_time
            self.sim.schedule_callback(self._busy_until - self.sim.now,
                                       execute)
        else:
            execute()

    # -- one-way notifications ---------------------------------------------
    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        """Install ``handler(src, body)`` for one-way notifications."""
        self._notify_handler = handler

    def notify(self, dst: str, body: Any) -> None:
        """Fire-and-forget message (watch events, heartbeats)."""
        if not self.endpoint.up:
            return
        self.endpoint.send(dst, {"kind": _NOTIFY, "body": body})

    # -- client side --------------------------------------------------------
    def _issue(self, dst: str, method: str, args: Any) -> tuple[Event, int]:
        """Send a request; return the completion event and its call id.

        Handing the id back to the caller lets :meth:`call` forget a
        timed-out call with one ``_pending`` pop — the previous design
        kept a reverse event→id dict updated on every issue and reply.
        """
        self._last_id = call_id = self._last_id + 1
        ev = self.sim.event()
        # RPC outcomes are always *observable*, never mandatory-to-wait:
        # a fire-and-forget call whose reply is a refusal must not trip
        # the kernel's unhandled-failure alarm.
        ev.callbacks.append(_observed)
        self._pending[call_id] = ev
        self.calls_issued += 1
        request: dict[str, Any] = {
            "kind": _REQ, "id": call_id, "method": method, "args": args,
        }
        if self.tracer is not None:
            ctx = self.tracer.current_ctx()
            if ctx is not None:
                request["tr"] = [ctx[0], ctx[1]]
        self.endpoint.send(dst, request)
        return ev, call_id

    def call_async(self, dst: str, method: str, args: Any) -> Event:
        """Issue a request; returns an event with the result.

        The event *fails* with :class:`RpcRejected` on refuse.  It never
        times out by itself — combine with :meth:`call` or a timeout
        race for deadline semantics.
        """
        return self._issue(dst, method, args)[0]

    def call(self, dst: str, method: str, args: Any,
             timeout: float) -> Generator[Event, Any, Any]:
        """Process helper: ``result = yield from node.call(...)``.

        Raises :class:`RpcTimeout` when no response arrives in
        ``timeout`` seconds and :class:`RpcRejected` on refuse.
        """
        ev, call_id = self._issue(dst, method, args)
        deadline = self.sim.timeout(timeout)
        yield AnyOf(self.sim, (ev, deadline))
        if ev._triggered:
            if ev._ok:
                return ev._value
            raise ev._value
        # Timed out: forget the pending call so a late reply is ignored.
        self.calls_timed_out += 1
        self._pending.pop(call_id, None)
        ev.callbacks = None  # defuse
        raise RpcTimeout(f"{method} to {dst} after {timeout}s")

    def call_retry(self, dst: str, method: str, args: Any,
                   timeout: float, attempts: int = 2,
                   backoff: float = 0.0) -> Generator[Event, Any, Any]:
        """:meth:`call` with bounded retries on timeout/refusal.

        Used by best-effort side channels (migration write forwarding,
        chunk pulls) where one transient drop should not abort a whole
        protocol round.  Retries are paced by ``backoff`` simulated
        seconds; the last failure is re-raised so callers still see the
        terminal outcome.
        """
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        last: Optional[RpcError] = None
        for attempt in range(attempts):
            if attempt > 0 and backoff > 0.0:
                yield self.sim.timeout(backoff)
            try:
                result = yield from self.call(dst, method, args,
                                              timeout=timeout)
            except (RpcTimeout, RpcRejected) as err:
                last = err
                continue
            return result
        assert last is not None
        raise last


class QuorumWait:
    """Callback-driven quorum fan-in: count completions, never rescan.

    This is the primitive behind Sedna's R/W quorum fan-out: requests
    are issued to all N replicas in parallel and the coordinator returns
    as soon as the quorum is met (§III.C).  Each call's completion runs
    one O(1) callback; the old pattern (re-scan every pending call and
    allocate a fresh ``AnyOf`` tuple on every wakeup) cost O(pending)
    per event on the hot path.

    Parameters
    ----------
    calls:
        ``[(name, event), ...]`` — the in-flight replica calls with
        attribution (``name`` may be ``None`` for anonymous waits).
    needed:
        Successes required before :attr:`done` succeeds.
    timeout:
        Deadline in simulated seconds; :attr:`done` fails with
        :class:`RpcTimeout` when it passes first.
    fail_fast:
        When True (default), :attr:`done` fails with :class:`RpcError`
        as soon as too many calls failed for the quorum to ever be met.
        When False, failures only count once every call has resolved —
        the collect-the-laggards mode (gather as many late replies as
        possible until the deadline).

    Attributes
    ----------
    oks / fails:
        ``[(name, value)]`` / ``[(name, exception)]`` as recorded up to
        the instant the wait settled (late completions are not added).
    done:
        Event succeeding with ``(oks, fails)`` or failing with
        :class:`RpcTimeout` / :class:`RpcError`.  Use :meth:`wait` from
        a process.

    The settle is deferred by one zero-delay callback so every reply
    arriving at the *same simulated instant* as the deciding one is
    still absorbed — a quorum met at t also reports the third ack that
    landed at t, which keeps repair/ack accounting identical to a
    coordinator that drains its mailbox before deciding.

    Allocation note: the envelope deliberately is NOT free-list pooled.
    Laggard replies hold callbacks into the wait long after it settles
    (the coordinator's read-repair path feeds on them), so recycling
    would need generation tags on every callback — and measured CPython
    allocation is cheaper than the extra indirection.  Churn is cut
    instead: anonymous entries share one bound reply handler (no
    per-call closure), the settle callback is a bound method (no
    lambda), and the observer noop is module-level.
    """

    __slots__ = ("sim", "needed", "fail_fast", "oks", "fails", "done",
                 "_outstanding", "_settled", "_armed", "_pending_exc")

    def __init__(self, sim: Simulator, calls: Iterable[Event],
                 needed: int, timeout: float,
                 fail_fast: bool = True) -> None:
        self.sim = sim
        self.needed = needed
        self.fail_fast = fail_fast
        self.oks: list[tuple[Any, Any]] = []
        self.fails: list[tuple[Any, BaseException]] = []
        self.done = sim.event()
        # The wait is observable, never mandatory: a waiter that went
        # away (coalesced follower, fire-and-forget repair) must not
        # trip the kernel's unhandled-failure alarm.
        self.done.callbacks.append(_observed)
        self._settled = False
        self._armed = False
        self._pending_exc: Optional[RpcError] = None
        if not isinstance(calls, list):
            calls = list(calls)
        self._outstanding = len(calls)
        anon_cb = None
        for name, ev in calls:
            if ev.callbacks is None:
                self._on_reply(name, ev)
            elif name is None:
                # Anonymous entry: one shared bound handler instead of a
                # closure per in-flight call.
                if anon_cb is None:
                    anon_cb = self._on_anon_reply
                ev.callbacks.append(anon_cb)
            else:
                ev.callbacks.append(
                    lambda done_ev, _n=name: self._on_reply(_n, done_ev))
        if not self._armed:
            deadline = sim.timeout(timeout)
            deadline.callbacks.append(self._on_deadline)

    def _impossible(self) -> bool:
        if self.fail_fast:
            return len(self.oks) + self._outstanding < self.needed
        return self._outstanding == 0 and len(self.oks) < self.needed

    def _on_anon_reply(self, ev: Event) -> None:
        self._on_reply(None, ev)

    def _on_reply(self, name: Any, ev: Event) -> None:
        if self._settled:
            return
        self._outstanding -= 1
        if ev.ok:
            self.oks.append((name, ev.value))
            if len(self.oks) >= self.needed:
                self._arm(None)
        else:
            self.fails.append((name, ev.value))
            if self._impossible():
                self._arm(RpcError(
                    f"quorum unreachable: {len(self.oks)} ok, "
                    f"{len(self.fails)} failed, needed {self.needed}"))

    def _on_deadline(self, _ev: Event) -> None:
        if not self._settled:
            self._arm(RpcTimeout(
                f"quorum {self.needed} not met; {len(self.oks)} ok so far"))

    def _arm(self, exc: Optional[RpcError]) -> None:
        """Schedule the settle one zero-delay callback out, so replies
        landing at the same instant are still counted."""
        if self._armed:
            return
        self._armed = True
        self._pending_exc = exc
        # Same scheduling as schedule_callback(0.0, ...) — one timeout,
        # one sequence number — minus the wrapper lambda.
        self.sim.timeout(0.0).callbacks.append(self._finalize)

    def _finalize(self, _ev: Optional[Event] = None) -> None:
        if self._settled:
            return
        self._settled = True
        if len(self.oks) >= self.needed:
            self.done.succeed((self.oks, self.fails))
        else:
            self.done.fail(self._pending_exc)

    @property
    def settled(self) -> bool:
        """True once the wait reached an outcome."""
        return self._settled

    def wait(self) -> Generator[Event, Any, Any]:
        """Process helper: ``oks, fails = yield from qw.wait()``."""
        result = yield self.done
        return result


def gather_quorum(sim: Simulator, events: list[Event], needed: int,
                  timeout: float) -> Generator[Event, Any, Any]:
    """Process helper: wait until ``needed`` of ``events`` succeed.

    Returns ``(successes, failures)`` where successes is a list of
    values (length >= needed on success) and failures a list of
    exceptions.  Raises :class:`RpcTimeout` when the deadline passes
    first, and :class:`RpcError` when too many events failed for the
    quorum to ever be reached.

    Thin anonymous wrapper over :class:`QuorumWait` (the attributed
    form the quorum coordinator uses).
    """
    wait = QuorumWait(sim, [(None, ev) for ev in events], needed, timeout)
    oks, fails = yield from wait.wait()
    return [value for _n, value in oks], [exc for _n, exc in fails]
