"""Adversarial workload scenarios for the chaos matrix.

Heat rebalancing (PR 5), DVV causal mode (PR 6) and the fast kernel
(PR 7) were each validated on one or two synthetic traffic shapes.
Redynis (PAPERS.md) argues that traffic-aware placement only proves
out under skewed, *drifting* and adversarial access patterns — this
module is that matrix.  Each :class:`ScenarioSpec` is a pure, seeded
description of one traffic shape; :class:`ScenarioStream` turns it
into a deterministic stream of :class:`OpIntent` records that
:class:`~repro.chaos.runner.ChaosRunner` dispatches through the exact
same op helpers (and therefore the exact same history records and
invariant checkers) the default chaos mix uses.

Four scenario kinds:

``zipf``
    Zipf(theta) key popularity over the kv mix — the skew-sweep axis
    (theta is the explorer's favourite dial).
``drift``
    Diurnal hot-set drift: the popular key-set rotates every
    ``period`` sim-seconds (:func:`drift_hot_set` is pure, so the
    rotation schedule is testable without a cluster).
``flash``
    Single-key flash crowd: background uniform traffic, then from
    ``flash_at`` the probability of hitting the one flash key ramps
    linearly to ``peak_prob`` over ``ramp`` seconds
    (:func:`flash_fraction`, also pure).
``storm``
    Scan-heavy trigger storm on the microblog use case: Zipf-skewed
    authors take timeline appends (``write_all`` — per-source value
    lists, so invariant 4 covers them) while scanners hammer
    ``read_all`` / batched multi-reads across author timelines.

Determinism: every draw comes from one ``random.Random`` seeded with
a string (Python hashes str/bytes seeds with sha512, not the
process-randomized ``hash()``), key names are derived from integer
ranks, and the pure helpers never touch a set — identical streams
under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Optional

from .kv import ZipfGenerator

__all__ = ["OpIntent", "ScenarioSpec", "ScenarioStream", "SCENARIOS",
           "SCENARIO_KINDS", "get_scenario", "scenario_matrix",
           "drift_hot_set", "flash_fraction"]

SCENARIO_KINDS = ("zipf", "drift", "flash", "storm")

#: Op kinds a stream may emit — the dispatchable subset of the chaos
#: runner's op helpers.
INTENT_KINDS = ("write_latest", "write_all", "read_latest", "read_all",
                "multi_read")


@dataclass(frozen=True)
class OpIntent:
    """One operation the scenario asks the runner to perform."""

    kind: str
    keys: tuple[str, ...]

    def __post_init__(self):
        if self.kind not in INTENT_KINDS:
            raise ValueError(f"unknown intent kind {self.kind!r}")
        if not self.keys:
            raise ValueError("an intent needs at least one key")


@dataclass(frozen=True)
class ScenarioSpec:
    """One seeded traffic shape (flat and JSON-roundtrippable so
    regression-corpus entries can embed it verbatim)."""

    name: str
    kind: str
    n_keys: int = 48
    """Key-pool size (``zipf``/``drift``/``flash``)."""

    theta: float = 0.99
    """Zipf skew (``zipf``/``storm``)."""

    write_ratio: float = 0.45
    """Fraction of single-key ops that are writes."""

    multi_prob: float = 0.10
    """Fraction of ops issued as batched multi-reads."""

    op_gap: tuple[float, float] = (0.04, 0.18)
    """Uniform bounds on the think time between a client's ops."""

    # drift
    period: float = 2.0
    """Hot-set rotation period (sim-seconds)."""

    hot_size: int = 4
    """Keys in the hot set at any instant."""

    hot_prob: float = 0.85
    """Probability a drift op targets the current hot set."""

    # flash
    flash_at: float = 2.0
    """Sim-seconds into the run when the flash crowd starts ramping."""

    ramp: float = 3.0
    """Seconds the flash takes to ramp from 0 to ``peak_prob``."""

    peak_prob: float = 0.9
    """Peak probability an op targets the flash key."""

    # storm (microblog)
    n_authors: int = 32
    """Author population; timeline keys are ``tl-user<rank>``."""

    scan_prob: float = 0.6
    """Fraction of storm ops that are scans instead of appends."""

    scan_fanout: int = 4
    """Timelines touched by one batched scan."""

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.n_keys < 2 or self.n_authors < 2:
            raise ValueError("need at least 2 keys/authors")
        if not 0 < self.hot_size <= self.n_keys:
            raise ValueError("hot_size must be in [1, n_keys]")
        if self.period <= 0 or self.ramp <= 0:
            raise ValueError("period and ramp must be positive")

    def to_dict(self) -> dict:
        d = asdict(self)
        d["op_gap"] = list(self.op_gap)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        d = dict(d)
        d["op_gap"] = tuple(d.get("op_gap", (0.04, 0.18)))
        return cls(**d)


def drift_hot_set(spec: ScenarioSpec, elapsed: float) -> tuple[int, ...]:
    """Hot key ranks at ``elapsed`` seconds into a drift scenario.

    Pure: epoch ``e = floor(elapsed / period)`` shifts the window by
    ``hot_size`` ranks, so the set is constant inside an epoch and
    rotates *exactly* at every period multiple (``hot_size < n_keys``
    guarantees consecutive epochs differ).
    """
    epoch = int(elapsed // spec.period)
    base = (epoch * spec.hot_size) % spec.n_keys
    return tuple((base + i) % spec.n_keys for i in range(spec.hot_size))


def flash_fraction(spec: ScenarioSpec, elapsed: float) -> float:
    """Probability an op at ``elapsed`` targets the flash key.

    Pure and monotone non-decreasing in ``elapsed``: 0 before
    ``flash_at``, a linear ramp over ``ramp`` seconds, then flat at
    ``peak_prob``.
    """
    if elapsed < spec.flash_at:
        return 0.0
    return spec.peak_prob * min(1.0, (elapsed - spec.flash_at) / spec.ramp)


class ScenarioStream:
    """Deterministic per-client op stream for one scenario.

    One stream per (run seed, scenario, client index); all draws come
    from a single seeded RNG so replays are byte-identical.
    """

    def __init__(self, spec: ScenarioSpec, seed: int, stream_id: int,
                 t0: float = 0.0):
        self.spec = spec
        self.t0 = t0
        self._rng = random.Random(
            f"{seed}/scenario/{spec.name}/{stream_id}")
        self._zipf: Optional[ZipfGenerator] = None
        if spec.kind in ("zipf", "storm"):
            space = spec.n_keys if spec.kind == "zipf" else spec.n_authors
            self._zipf = ZipfGenerator(
                space, spec.theta,
                seed=f"{seed}/scenario-zipf/{spec.name}/{stream_id}")

    def gap(self) -> float:
        """Think time before the next op."""
        return self._rng.uniform(*self.spec.op_gap)

    def next(self, now: float) -> OpIntent:
        """The next op intent at sim-time ``now``."""
        kind = self.spec.kind
        if kind == "zipf":
            return self._next_zipf()
        if kind == "drift":
            return self._next_drift(now)
        if kind == "flash":
            return self._next_flash(now)
        return self._next_storm()

    # -- per-kind draws --------------------------------------------------
    def _key(self, rank: int) -> str:
        return f"sc-{rank:04d}"

    def _mix(self, rank: int, sample) -> OpIntent:
        """Shared write/read/multi mix over a key-rank sampler."""
        roll = self._rng.random()
        if roll < self.spec.multi_prob:
            count = self._rng.randint(2, min(4, self.spec.n_keys))
            ranks = {rank}
            while len(ranks) < count:
                ranks.add(sample())
            return OpIntent("multi_read",
                            tuple(self._key(r) for r in sorted(ranks)))
        if roll < self.spec.multi_prob + self.spec.write_ratio:
            return OpIntent("write_latest", (self._key(rank),))
        return OpIntent("read_latest", (self._key(rank),))

    def _next_zipf(self) -> OpIntent:
        assert self._zipf is not None
        return self._mix(self._zipf.sample(), self._zipf.sample)

    def _drift_rank(self, now: float) -> int:
        hot = drift_hot_set(self.spec, now - self.t0)
        if self._rng.random() < self.spec.hot_prob:
            return hot[self._rng.randrange(len(hot))]
        return self._rng.randrange(self.spec.n_keys)

    def _next_drift(self, now: float) -> OpIntent:
        return self._mix(self._drift_rank(now),
                         lambda: self._drift_rank(now))

    def _flash_rank(self, now: float) -> int:
        # Rank 0 doubles as the flash key so key names stay in-pool.
        if self._rng.random() < flash_fraction(self.spec, now - self.t0):
            return 0
        return self._rng.randrange(self.spec.n_keys)

    def _next_flash(self, now: float) -> OpIntent:
        return self._mix(self._flash_rank(now),
                         lambda: self._flash_rank(now))

    def _timeline(self, rank: int) -> str:
        return f"tl-user{rank:04d}"

    def _next_storm(self) -> OpIntent:
        assert self._zipf is not None
        roll = self._rng.random()
        if roll < self.spec.scan_prob:
            # Scan slice: half single-timeline read_all, half batched
            # multi-reads fanning across timelines.
            if self._rng.random() < 0.5:
                return OpIntent("read_all",
                                (self._timeline(self._zipf.sample()),))
            count = min(self.spec.scan_fanout, self.spec.n_authors)
            ranks: set[int] = set()
            while len(ranks) < count:
                ranks.add(self._zipf.sample())
            return OpIntent("multi_read",
                            tuple(self._timeline(r) for r in sorted(ranks)))
        return OpIntent("write_all", (self._timeline(self._zipf.sample()),))


#: Named presets — one per scenario kind.  These are the shapes the
#: golden-digest guard pins and the CLI exposes (``python -m
#: repro.chaos --scenario <name>``).
SCENARIOS: dict[str, ScenarioSpec] = {
    "zipf-hot": ScenarioSpec(name="zipf-hot", kind="zipf", theta=1.1),
    "drift-diurnal": ScenarioSpec(name="drift-diurnal", kind="drift",
                                  period=1.5, hot_size=4, hot_prob=0.85),
    "flash-crowd": ScenarioSpec(name="flash-crowd", kind="flash",
                                flash_at=1.5, ramp=2.0, peak_prob=0.9),
    "trigger-storm": ScenarioSpec(name="trigger-storm", kind="storm",
                                  theta=0.99, scan_prob=0.6),
}


def get_scenario(name: str) -> ScenarioSpec:
    """Resolve a preset by name (helpful error on a typo)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"expected one of {sorted(SCENARIOS)}") from None


def scenario_matrix(thetas: tuple[float, ...] = (0.6, 0.99, 1.3)) \
        -> list[ScenarioSpec]:
    """The full explorer matrix: a zipf theta sweep plus the drift,
    flash and storm presets."""
    matrix = [ScenarioSpec(name=f"zipf-t{theta:g}", kind="zipf",
                           theta=theta)
              for theta in thetas]
    matrix.extend(SCENARIOS[name] for name in ("drift-diurnal",
                                               "flash-crowd",
                                               "trigger-storm"))
    return matrix
