"""Workload generators: the paper's KV microbenchmark shapes and the
synthetic micro-blogging stream for the §V use case."""

from .kv import (PAPER_VALUE, ZipfGenerator, paper_keys, uniform_keys,
                 zipfian_keys)
from .microblog import FollowEdge, MicroblogGenerator, Tweet

__all__ = [
    "PAPER_VALUE", "ZipfGenerator", "paper_keys", "uniform_keys",
    "zipfian_keys",
    "FollowEdge", "MicroblogGenerator", "Tweet",
]
