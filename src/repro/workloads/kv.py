"""Key-value workload generators for the benchmarks.

§VI.A.1 fixes the experiment shape: "all the Key-Value pair has a 20
bytes key which was generated randomly like 'test-00000000000000', and
has a 20 bytes value which was a constant value."  :func:`paper_keys`
reproduces exactly that.  Zipfian/uniform mixes cover the ablations.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator

__all__ = ["paper_keys", "PAPER_VALUE", "uniform_keys", "zipfian_keys",
           "ZipfGenerator"]

PAPER_VALUE = b"value-0123456789abcd"
assert len(PAPER_VALUE) == 20


def paper_keys(n: int, seed: int = 0) -> list[bytes]:
    """``n`` random 20-byte keys in the paper's 'test-XXXXXXXXXXXXXX' shape."""
    rng = random.Random(seed)
    keys = []
    for _ in range(n):
        # 'test-' + 15 digits = 20 bytes (the paper's example prints 14
        # zeros but specifies 20-byte keys; we honour the byte count).
        suffix = "".join(rng.choice("0123456789") for _ in range(15))
        keys.append(f"test-{suffix}".encode())
    return keys


def uniform_keys(n: int, space: int, seed: int = 0) -> Iterator[bytes]:
    """``n`` draws uniformly from a key space of ``space`` distinct keys."""
    rng = random.Random(seed)
    for _ in range(n):
        yield f"uni-{rng.randrange(space):012d}".encode()


#: Shared harmonic-CDF cache keyed ``(space, theta)``.  A 5x5 theta
#: sweep builds 25 generators per client stream; without the cache each
#: one redoes the O(space) harmonic sum.  The tables are immutable
#: tuples, so sharing across generators cannot couple their draws.
_CDF_CACHE: dict[tuple[int, float], tuple[float, ...]] = {}


def _zipf_cdf(space: int, theta: float) -> tuple[float, ...]:
    """The (cached) inverse-sampling CDF for Zipf(theta) over ``space``."""
    key = (space, theta)
    cdf = _CDF_CACHE.get(key)
    if cdf is None:
        weights = [1.0 / (rank ** theta) for rank in range(1, space + 1)]
        total = sum(weights)
        acc = 0.0
        out = []
        for w in weights:
            acc += w / total
            out.append(acc)
        cdf = _CDF_CACHE[key] = tuple(out)
    return cdf


class ZipfGenerator:
    """Zipfian key sampler (skewed popularity, like tweet authors).

    Uses the classic rejection-free inverse-CDF over precomputed
    harmonic weights (cached per ``(space, theta)``); deterministic
    per seed.  ``seed`` may be an int or a string — string seeds go
    through ``random.Random``'s sha512 path, so they are stable across
    ``PYTHONHASHSEED`` values.
    """

    def __init__(self, space: int, theta: float = 0.99, seed=0):
        if space < 1:
            raise ValueError("space must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.space = space
        self.theta = theta
        self._rng = random.Random(seed)
        self._cdf = _zipf_cdf(space, theta)

    def sample(self) -> int:
        """One rank in [0, space), rank 0 most popular."""
        return bisect_left(self._cdf, self._rng.random())


def zipfian_keys(n: int, space: int, theta: float = 0.99,
                 seed: int = 0) -> Iterator[bytes]:
    """``n`` Zipf-distributed draws over ``space`` keys."""
    gen = ZipfGenerator(space, theta, seed)
    for _ in range(n):
        yield f"zipf-{gen.sample():012d}".encode()
