"""Synthetic micro-blogging stream (the §V use-case workload).

Substitute for the Sina Weibo / Twitter crawl the paper's search engine
consumed: Zipf-distributed authors, <=140-byte messages, follow edges,
retweets and comments — the stream shape (small records, high write
rate, skewed authorship) is what the storage layer and triggers see.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .kv import ZipfGenerator

__all__ = ["Tweet", "FollowEdge", "MicroblogGenerator"]

_WORDS = (
    "cloud realtime storage memory cluster zookeeper trigger index search "
    "latency replica quorum vnode gossip stream tweet data node scale fast "
    "cache write read key value hash ring lease dirty monitor filter job "
    "shard lockfree commit snapshot recover balance push fresh rank graph"
).split()


@dataclass(frozen=True)
class Tweet:
    """One message: id, author, text, optional retweet target."""

    tweet_id: str
    author: str
    text: str
    timestamp: float
    retweet_of: Optional[str] = None

    def encoded(self) -> str:
        """Compact storable form."""
        rt = self.retweet_of or ""
        return f"{self.author}|{self.timestamp}|{rt}|{self.text}"

    @classmethod
    def decode(cls, tweet_id: str, blob: str) -> "Tweet":
        author, ts, rt, text = blob.split("|", 3)
        return cls(tweet_id=tweet_id, author=author, text=text,
                   timestamp=float(ts), retweet_of=rt or None)


@dataclass(frozen=True)
class FollowEdge:
    """A social edge: ``follower`` follows ``followee``."""

    follower: str
    followee: str


class MicroblogGenerator:
    """Deterministic stream of tweets and follow events.

    Parameters
    ----------
    n_users:
        User population; authorship is Zipf(theta) over it.
    theta:
        Zipf skew (0.99 ~ real social traffic).
    retweet_prob:
        Probability a message retweets an earlier one.
    seed:
        Stream seed.
    """

    def __init__(self, n_users: int = 200, theta: float = 0.99,
                 retweet_prob: float = 0.2, seed: int = 7):
        self.n_users = n_users
        self.retweet_prob = retweet_prob
        self._rng = random.Random(seed)
        self._zipf = ZipfGenerator(n_users, theta, seed + 1)
        self._counter = 0
        self._recent: list[str] = []

    def user(self, rank: int) -> str:
        """Stable user name for a popularity rank."""
        return f"user{rank:05d}"

    def tweets(self, n: int, now: float = 0.0,
               dt: float = 0.01) -> Iterator[Tweet]:
        """``n`` tweets with timestamps advancing by ``dt``."""
        ts = now
        for _ in range(n):
            self._counter += 1
            tweet_id = f"tw{self._counter:09d}"
            author = self.user(self._zipf.sample())
            n_words = self._rng.randint(3, 18)
            text = " ".join(self._rng.choice(_WORDS)
                            for _ in range(n_words))[:140]
            retweet_of = None
            if self._recent and self._rng.random() < self.retweet_prob:
                retweet_of = self._rng.choice(self._recent)
            self._recent.append(tweet_id)
            if len(self._recent) > 500:
                self._recent.pop(0)
            yield Tweet(tweet_id=tweet_id, author=author, text=text,
                        timestamp=ts, retweet_of=retweet_of)
            ts += dt

    def follow_edges(self, n: int) -> Iterator[FollowEdge]:
        """``n`` follow events; popular users gain followers faster."""
        for _ in range(n):
            follower = self.user(self._rng.randrange(self.n_users))
            followee = self.user(self._zipf.sample())
            if follower == followee:
                followee = self.user((self._zipf.sample() + 1) % self.n_users)
            yield FollowEdge(follower=follower, followee=followee)
