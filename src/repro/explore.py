"""``python -m repro.explore`` — the scenario-matrix config explorer.

Thin entry point; the implementation lives in
:mod:`repro.tools.explorer`.
"""

from .tools.explorer import main

if __name__ == "__main__":
    raise SystemExit(main())
