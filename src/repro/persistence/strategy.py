"""Persistence strategies: none / periodic snapshot / write-ahead log.

§II's technique table: "Periodically flush or write-ahead logs —
different speed and availability according users' needs".  The
trade-off reproduced here (and measured by
``benchmarks/test_ablation_persistence.py``):

* ``none`` — fastest writes, every un-replicated byte dies with the
  cluster.
* ``snapshot`` — no per-write cost; loses at most one flush interval.
* ``wal`` — every write pays a simulated log append; loses nothing
  acknowledged.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.simulator import Simulator
from ..storage.versioned import ValueElement, VersionedStore
from .disk import DiskTimings, SimDisk

__all__ = ["PersistenceStrategy", "NoPersistence", "SnapshotPersistence",
           "WalPersistence", "make_strategy"]


class PersistenceStrategy:
    """Interface each strategy implements.

    ``write_delay`` is charged synchronously on the replica write path;
    ``on_write`` records the mutation; ``recover`` rebuilds the store's
    rows after a restart.
    """

    name = "none"

    def write_delay(self) -> float:
        """Extra seconds a replica write must wait before acking."""
        return 0.0

    def on_write(self, key: str, element: ValueElement) -> None:
        """Record one applied write."""

    def start(self, sim: Simulator, store_rows: Callable[[], dict]) -> None:
        """Begin any background flushing."""

    def stop(self) -> None:
        """Stop background work (node crash)."""

    def recover(self) -> dict[str, list[ValueElement]]:
        """Rows recoverable from disk after a crash."""
        return {}


class NoPersistence(PersistenceStrategy):
    """Memory only — replication is the only durability (paper default:
    'the possibility of lost all the three replicas ... can be
    ignored')."""

    name = "none"


class SnapshotPersistence(PersistenceStrategy):
    """Periodic flush of the whole store to disk (§III.C 'periodic data
    flushing')."""

    name = "snapshot"

    def __init__(self, disk: SimDisk, node_name: str, interval: float):
        self.disk = disk
        self.blob = f"{node_name}.snapshot"
        self.interval = interval
        self._running = False
        self._rows: Optional[Callable[[], dict]] = None
        self._sim: Optional[Simulator] = None

    def start(self, sim: Simulator, store_rows: Callable[[], dict]) -> None:
        self._sim = sim
        self._rows = store_rows
        self._running = True
        sim.process(self._flusher(), name=f"{self.blob}-flusher")

    def stop(self) -> None:
        self._running = False

    def _flusher(self):
        flush_timer = self._sim.recurring(self.interval)
        while self._running:
            yield flush_timer.tick()
            if not self._running:
                return
            self.flush_now()
            # Charge serialization time proportional to the data size.
            rows = self.disk.read_blob(self.blob) or {}
            yield self._sim.timeout(DiskTimings.SNAPSHOT_PER_KEY * len(rows)
                                    + DiskTimings.FSYNC)

    def flush_now(self) -> None:
        """Take a snapshot immediately (also used at graceful shutdown)."""
        rows = {key: list(elements) for key, elements in self._rows().items()}
        self.disk.write_blob(self.blob, rows)

    def recover(self) -> dict[str, list[ValueElement]]:
        return dict(self.disk.read_blob(self.blob) or {})


class WalPersistence(PersistenceStrategy):
    """Write-ahead log: every mutation appended before the ack."""

    name = "wal"

    def __init__(self, disk: SimDisk, node_name: str,
                 compact_every: int = 10_000):
        self.disk = disk
        self.log = f"{node_name}.wal"
        self.blob = f"{node_name}.walbase"
        self.compact_every = compact_every
        self._since_compact = 0
        self._rows: Optional[Callable[[], dict]] = None

    def write_delay(self) -> float:
        return DiskTimings.APPEND

    def on_write(self, key: str, element: ValueElement) -> None:
        self.disk.append(self.log, (key, element))
        self._since_compact += 1
        if self._rows is not None and self._since_compact >= self.compact_every:
            self.compact()

    def start(self, sim: Simulator, store_rows: Callable[[], dict]) -> None:
        self._rows = store_rows

    def compact(self) -> None:
        """Fold the log into a base snapshot and truncate it."""
        rows = {key: list(elements) for key, elements in self._rows().items()}
        self.disk.write_blob(self.blob, rows)
        self.disk.truncate_log(self.log)
        self._since_compact = 0

    def recover(self) -> dict[str, list[ValueElement]]:
        rows: dict[str, list[ValueElement]] = {
            key: list(elements)
            for key, elements in (self.disk.read_blob(self.blob) or {}).items()}
        # Replay the tail, newest-per-source wins.
        scratch = VersionedStore()
        for key, elements in rows.items():
            scratch.merge_elements(key, elements)
        for key, element in self.disk.read_log(self.log):
            scratch.merge_elements(key, [element])
        return {key: list(row.elements) for key, row in scratch.rows.items()}


def make_strategy(kind: str, disk: SimDisk, node_name: str,
                  snapshot_interval: float) -> PersistenceStrategy:
    """Factory selecting the configured strategy."""
    if kind == "none":
        return NoPersistence()
    if kind == "snapshot":
        return SnapshotPersistence(disk, node_name, snapshot_interval)
    if kind == "wal":
        return WalPersistence(disk, node_name)
    raise ValueError(f"unknown persistence strategy {kind!r}")
