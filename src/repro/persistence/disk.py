"""Simulated local disk that survives node crashes.

The paper's persistency strategy (§II table, §III.C) flushes memory
contents periodically or write-ahead-logs each mutation so that "like
the power shortage of the cluster, we can still recover the data from
lost by the periodic data flushing".  A crash wipes a node's *memory*;
its disk contents survive and are re-read on restart.

:class:`SimDisk` models exactly that: a name→bytes-like object map held
*outside* the node object, with simulated write latencies charged by
the persistence strategies (sequential log appends are fast; that is
why WAL beats random-write flushing on real disks).
"""

from __future__ import annotations

from typing import Any

__all__ = ["SimDisk", "DiskTimings"]


class DiskTimings:
    """Latency constants for a 2009-class SATA disk with write cache."""

    APPEND = 120e-6       # sequential log append (cache-hit)
    FSYNC = 2e-3          # forced flush
    SNAPSHOT_PER_KEY = 2e-6  # serialize one row during a snapshot


class SimDisk:
    """Crash-surviving storage for one node.

    Files are append-only logs (lists) or whole-value blobs; the object
    lives in the cluster, not in the node, so ``node.crash()`` cannot
    touch it.
    """

    def __init__(self):
        self.logs: dict[str, list[Any]] = {}
        self.blobs: dict[str, Any] = {}
        self.appends = 0
        self.snapshots = 0

    def append(self, log_name: str, record: Any) -> None:
        """Append one record to a named log."""
        self.logs.setdefault(log_name, []).append(record)
        self.appends += 1

    def read_log(self, log_name: str) -> list[Any]:
        """All records of a log (empty when absent)."""
        return list(self.logs.get(log_name, ()))

    def truncate_log(self, log_name: str) -> None:
        """Drop a log (after it was folded into a snapshot)."""
        self.logs.pop(log_name, None)

    def write_blob(self, name: str, value: Any) -> None:
        """Atomically replace a whole-file blob (snapshot)."""
        self.blobs[name] = value
        self.snapshots += 1

    def read_blob(self, name: str, default: Any = None) -> Any:
        """Blob contents or ``default``."""
        return self.blobs.get(name, default)
