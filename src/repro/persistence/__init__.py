"""Persistence substrate: simulated disk + flush/WAL strategies (§III.C)."""

from .disk import DiskTimings, SimDisk
from .strategy import (NoPersistence, PersistenceStrategy,
                       SnapshotPersistence, WalPersistence, make_strategy)

__all__ = [
    "DiskTimings", "SimDisk",
    "NoPersistence", "PersistenceStrategy", "SnapshotPersistence",
    "WalPersistence", "make_strategy",
]
