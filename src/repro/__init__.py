"""repro — a full reproduction of *Sedna: A Memory Based Key-Value
Storage System for Realtime Processing in Cloud* (CLUSTER Workshops
2012).

Public API tour::

    from repro import SednaCluster, SednaConfig, TriggerRuntime

    cluster = SednaCluster(n_nodes=9, zk_size=3)
    cluster.start()
    client = cluster.client()

    def script():
        yield from client.write_latest("greeting", "hello")
        return (yield from client.read_latest("greeting"))

    print(cluster.run(script()))   # -> "hello"

Sub-packages:

* :mod:`repro.core` — the paper's contribution: partitioning,
  quorum replication, node management, the write/read APIs.
* :mod:`repro.triggers` — the realtime trigger programming model.
* :mod:`repro.zk` — ZooKeeper substrate (znodes, sessions, ensemble).
* :mod:`repro.storage` — memcached-class local engine + versioned rows.
* :mod:`repro.net` — deterministic DES network substrate.
* :mod:`repro.persistence` — WAL / snapshot strategies.
* :mod:`repro.baselines` — the memcached comparison system.
* :mod:`repro.workloads` — benchmark workload generators.
* :mod:`repro.bench` — figure/table regeneration harness.
"""

from .core import (FullKey, LatencySeries, MappingCache, Ring, SednaClient,
                   SednaCluster, SednaConfig, SednaNode, summarize)
from .triggers import (Action, DataHooks, Filter, Job, Result, TriggerInput,
                       TriggerOutput, TriggerRuntime)

__version__ = "1.0.0"

__all__ = [
    "FullKey", "LatencySeries", "MappingCache", "Ring", "SednaClient",
    "SednaCluster", "SednaConfig", "SednaNode", "summarize",
    "Action", "DataHooks", "Filter", "Job", "Result", "TriggerInput",
    "TriggerOutput", "TriggerRuntime",
    "__version__",
]
