"""Gossip-based membership — the design Sedna argues against (§VII).

"we ... avoid Gossip mechanism to maintain a consistent cluster status
like Cassandra and Redis does", relying on the ZooKeeper sub-cluster
instead.  To *quantify* that argument (see
``benchmarks/test_ablation_membership.py``) we implement the thing
being avoided: an anti-entropy push gossip in the Scuttlebutt/Dynamo
family.

Protocol per node, every ``interval``:

1. bump the local heartbeat counter;
2. pick ``fanout`` random live peers and push the full membership view
   ``{name: (heartbeat, status)}``;
3. on receipt, merge entry-wise (higher heartbeat wins);
4. entries whose heartbeat has not advanced within ``fail_after``
   seconds are marked DEAD (and pruned after ``forget_after``).

Deterministic: each node draws peers from a seeded RNG.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from ..net.simulator import Simulator
from ..net.transport import Message, Network

__all__ = ["GossipNode", "GossipCluster"]

ALIVE = "alive"
DEAD = "dead"


class GossipNode:
    """One gossiping member."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 seeds: list[str], interval: float = 0.5, fanout: int = 2,
                 fail_after: float = 2.0, forget_after: float = 6.0,
                 rng_seed: int = 0):
        self.sim = sim
        self.name = name
        self.seeds = [s for s in seeds if s != name]
        self.interval = interval
        self.fanout = fanout
        self.fail_after = fail_after
        self.forget_after = forget_after
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which would make peer selection — and thus
        # convergence timing — differ between otherwise identical runs.
        self._rng = random.Random(
            rng_seed ^ zlib.crc32(name.encode()) & 0xFFFF)
        self.endpoint = network.endpoint(name)
        self.endpoint.on_message(self._on_message)
        self.heartbeat = 0
        # name -> [heartbeat, last_local_bump, status]
        self.view: dict[str, list] = {
            name: [0, sim.now, ALIVE]}
        self.running = False
        self.messages_sent = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Begin gossiping."""
        self.running = True
        for seed in self.seeds:
            self.view.setdefault(seed, [0, self.sim.now, ALIVE])
        self.sim.process(self._loop(), name=f"{self.name}-gossip")

    def stop(self) -> None:
        """Crash: stop gossiping, endpoint down."""
        self.running = False
        self.endpoint.crash()

    # -- protocol ------------------------------------------------------------
    def _loop(self):
        beat = self.sim.recurring(self.interval)
        while self.running:
            yield beat.tick()
            if not self.running:
                return
            self.heartbeat += 1
            self.view[self.name] = [self.heartbeat, self.sim.now, ALIVE]
            self._detect_failures()
            self._push()

    def _push(self) -> None:
        peers = [n for n, entry in self.view.items()
                 if n != self.name and entry[2] == ALIVE]
        if not peers:
            peers = self.seeds
        self._rng.shuffle(peers)
        payload = {"gossip": {name: [entry[0], entry[2]]
                              for name, entry in self.view.items()}}
        for peer in peers[: self.fanout]:
            if self.endpoint.up:
                self.endpoint.send(peer, payload)
                self.messages_sent += 1

    def _on_message(self, msg: Message) -> None:
        if not self.running:
            return
        incoming = msg.payload.get("gossip", {})
        for name, (heartbeat, status) in incoming.items():
            mine = self.view.get(name)
            if mine is None or heartbeat > mine[0]:
                self.view[name] = [heartbeat, self.sim.now,
                                   ALIVE if status == ALIVE else DEAD]

    def _detect_failures(self) -> None:
        now = self.sim.now
        for name, entry in list(self.view.items()):
            if name == self.name:
                continue
            age = now - entry[1]
            if entry[2] == ALIVE and age > self.fail_after:
                entry[2] = DEAD
            elif entry[2] == DEAD and age > self.forget_after:
                del self.view[name]

    # -- queries ----------------------------------------------------------
    def alive_members(self) -> set[str]:
        """Members this node currently believes alive."""
        return {name for name, entry in self.view.items()
                if entry[2] == ALIVE}


class GossipCluster:
    """Assembly of gossiping members with convergence helpers."""

    def __init__(self, sim: Simulator, network: Network, size: int,
                 prefix: str = "g", interval: float = 0.5, fanout: int = 2,
                 fail_after: float = 2.0, rng_seed: int = 0):
        self.sim = sim
        self.network = network
        self.names = [f"{prefix}{i}" for i in range(size)]
        self.nodes = {
            name: GossipNode(sim, network, name, self.names,
                             interval=interval, fanout=fanout,
                             fail_after=fail_after, rng_seed=rng_seed + i)
            for i, name in enumerate(self.names)}

    def start(self) -> None:
        """Start every member."""
        for node in self.nodes.values():
            node.start()

    def add_node(self, name: str, **kwargs) -> GossipNode:
        """A newcomer that only knows the seeds."""
        node = GossipNode(self.sim, self.network, name, self.names, **kwargs)
        self.nodes[name] = node
        node.start()
        return node

    def converged(self) -> bool:
        """True when every live member sees the same live set."""
        live = [n for n in self.nodes.values() if n.running]
        if not live:
            return True
        views = [n.alive_members() for n in live]
        return all(v == views[0] for v in views)

    def total_messages(self) -> int:
        """Gossip messages sent so far across the cluster."""
        return sum(n.messages_sent for n in self.nodes.values())
