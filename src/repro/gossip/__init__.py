"""Gossip membership — the alternative Sedna rejects (§VII), built to
quantify the comparison."""

from .membership import GossipCluster, GossipNode

__all__ = ["GossipCluster", "GossipNode"]
