"""Classic ZooKeeper coordination recipes on the substrate.

Sedna itself uses ZooKeeper for membership and the vnode mapping, but a
coordination service earns its keep through the standard recipes —
distributed locks, leader election, barriers, queues — and implementing
them validates exactly the substrate features the paper relies on
(ephemeral znodes, sequential names, ordered writes) plus the watches
Sedna declines to use.

All recipe methods are process helpers (``yield from``).  They follow
the canonical Apache recipes:

* **Lock** — ephemeral sequential child; holder = lowest sequence;
  waiters watch their immediate predecessor (no herd effect).
* **LeaderElection** — the same protocol, held indefinitely.
* **Barrier** — members create children and wait until ``size`` are
  present.
* **DistributedQueue** — sequential children; consumers claim the head
  by conditional delete.
"""

from __future__ import annotations

from typing import Optional

from ..net.simulator import AnyOf
from .client import ZkClient
from .znode import NodeExistsError, NoNodeError

__all__ = ["DistributedLock", "LeaderElection", "Barrier",
           "DistributedQueue"]


def _sequence_of(name: str) -> int:
    return int(name[-10:])


class _SequenceProtocol:
    """Shared machinery: own an ephemeral sequential child, wait until
    it is the lowest (watching the predecessor)."""

    def __init__(self, zk: ZkClient, path: str, prefix: str):
        self.zk = zk
        self.path = path
        self.prefix = prefix
        self.my_path: Optional[str] = None

    def _enroll(self):
        yield from self.zk.ensure_path(self.path)
        self.my_path = yield from self.zk.create(
            f"{self.path}/{self.prefix}", b"", ephemeral=True,
            sequential=True)
        return self.my_path

    def _my_rank(self):
        """(rank, predecessor_name) among current children."""
        children = yield from self.zk.get_children(self.path)
        mine = self.my_path.rsplit("/", 1)[1]
        ordered = sorted(children, key=_sequence_of)
        rank = ordered.index(mine)
        predecessor = ordered[rank - 1] if rank > 0 else None
        return rank, predecessor

    def _wait_until_first(self, timeout: Optional[float] = None):
        deadline = (self.zk.sim.now + timeout) if timeout is not None \
            else None
        while True:
            rank, predecessor = yield from self._my_rank()
            if rank == 0:
                return True
            # Watch the immediate predecessor only (herd avoidance).
            fired = self.zk.sim.event()

            def on_event(_event, fired=fired):
                if not fired.triggered:
                    fired.succeed(None)

            stat = yield from self.zk.exists(
                f"{self.path}/{predecessor}", watch=on_event)
            if stat is None:
                continue  # predecessor vanished between list and watch
            waiters = [fired]
            if deadline is not None:
                remaining = deadline - self.zk.sim.now
                if remaining <= 0:
                    yield from self._withdraw()
                    return False
                waiters.append(self.zk.sim.timeout(remaining))
            else:
                # Re-check periodically in case the watch was lost to a
                # server failover.
                waiters.append(self.zk.sim.timeout(2.0))
            yield AnyOf(self.zk.sim, waiters)
            if deadline is not None and self.zk.sim.now >= deadline \
                    and not fired.triggered:
                yield from self._withdraw()
                return False

    def _withdraw(self):
        if self.my_path is not None:
            try:
                yield from self.zk.delete(self.my_path)
            except NoNodeError:
                pass
            self.my_path = None


class DistributedLock(_SequenceProtocol):
    """A fair, herd-free distributed mutex.

    ::

        lock = DistributedLock(zk, "/locks/resource")
        acquired = yield from lock.acquire(timeout=5.0)
        ...
        yield from lock.release()
    """

    def __init__(self, zk: ZkClient, path: str):
        super().__init__(zk, path, "lock-")

    @property
    def held(self) -> bool:
        """Whether we currently believe we hold the lock."""
        return self.my_path is not None and getattr(self, "_held", False)

    def acquire(self, timeout: Optional[float] = None):
        """Take the lock; returns False on timeout."""
        if getattr(self, "_held", False):
            raise RuntimeError("lock already held by this handle")
        yield from self._enroll()
        got = yield from self._wait_until_first(timeout)
        self._held = bool(got)
        return got

    def release(self):
        """Release the lock (deletes our znode, waking the successor)."""
        if not getattr(self, "_held", False):
            raise RuntimeError("releasing a lock we do not hold")
        self._held = False
        yield from self._withdraw()


class LeaderElection(_SequenceProtocol):
    """Leader election: lowest sequence leads until it resigns or dies.

    ``volunteer`` blocks until this participant becomes the leader;
    ``resign`` abdicates (ephemeral znode removal also abdicates
    implicitly when the session dies).
    """

    def __init__(self, zk: ZkClient, path: str):
        super().__init__(zk, path, "candidate-")
        self.leading = False

    def volunteer(self, timeout: Optional[float] = None):
        """Join the election and wait for leadership."""
        yield from self._enroll()
        got = yield from self._wait_until_first(timeout)
        self.leading = bool(got)
        return got

    def resign(self):
        """Give up leadership (or candidacy)."""
        self.leading = False
        yield from self._withdraw()


class Barrier:
    """A ``size``-party entry barrier."""

    def __init__(self, zk: ZkClient, path: str, size: int):
        self.zk = zk
        self.path = path
        self.size = size
        self.my_path: Optional[str] = None

    def enter(self, timeout: Optional[float] = None):
        """Announce arrival and wait for all parties; False on timeout."""
        yield from self.zk.ensure_path(self.path)
        self.my_path = yield from self.zk.create(
            f"{self.path}/member-", b"", ephemeral=True, sequential=True)
        deadline = (self.zk.sim.now + timeout) if timeout is not None \
            else None
        while True:
            children = yield from self.zk.get_children(self.path)
            if len(children) >= self.size:
                return True
            if deadline is not None and self.zk.sim.now >= deadline:
                return False
            yield self.zk.sim.timeout(0.05)

    def leave(self):
        """Withdraw from the barrier."""
        if self.my_path is not None:
            try:
                yield from self.zk.delete(self.my_path)
            except NoNodeError:
                pass
            self.my_path = None


class DistributedQueue:
    """A FIFO queue: producers append, consumers claim by delete."""

    def __init__(self, zk: ZkClient, path: str):
        self.zk = zk
        self.path = path
        self._ready = False

    def _ensure(self):
        if not self._ready:
            yield from self.zk.ensure_path(self.path)
            self._ready = True

    def offer(self, payload: bytes):
        """Enqueue one item."""
        yield from self._ensure()
        path = yield from self.zk.create(f"{self.path}/item-", payload,
                                         sequential=True)
        return path

    def take(self, timeout: Optional[float] = None):
        """Dequeue the head item (bytes); None on timeout/empty."""
        yield from self._ensure()
        deadline = (self.zk.sim.now + timeout) if timeout is not None \
            else None
        while True:
            children = yield from self.zk.get_children(self.path)
            for name in sorted(children, key=_sequence_of):
                full = f"{self.path}/{name}"
                try:
                    data, _stat = yield from self.zk.get(full)
                    yield from self.zk.delete(full)
                except NoNodeError:
                    continue  # another consumer claimed it first
                return data
            if deadline is not None and self.zk.sim.now >= deadline:
                return None
            if timeout is not None and timeout == 0:
                return None
            yield self.zk.sim.timeout(0.05)

    def size(self):
        """Current queue length."""
        yield from self._ensure()
        children = yield from self.zk.get_children(self.path)
        return len(children)
