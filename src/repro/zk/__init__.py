"""ZooKeeper substrate: znode tree, sessions, watches, ZAB-lite ensemble.

Built from scratch so Sedna's node management (§III.D–E) runs on the
same coordination semantics the paper assumed: ephemeral liveness
znodes, ordered quorum writes, cheap local reads on any member.
"""

from .znode import (BadVersionError, NodeExistsError, NoNodeError,
                    NotEmptyError, Stat, ZkError, Znode, ZnodeTree,
                    validate_path)
from .session import Session, SessionTable
from .watches import (EVENT_CHANGED, EVENT_CHILD, EVENT_CREATED,
                      EVENT_DELETED, WatchEvent, WatchRegistry)
from .server import ZkConfig, ZkServer
from .client import SessionExpired, ZkClient
from .ensemble import ZkEnsemble
from .recipes import Barrier, DistributedLock, DistributedQueue, LeaderElection

__all__ = [
    "BadVersionError", "NodeExistsError", "NoNodeError", "NotEmptyError",
    "Stat", "ZkError", "Znode", "ZnodeTree", "validate_path",
    "Session", "SessionTable",
    "EVENT_CHANGED", "EVENT_CHILD", "EVENT_CREATED", "EVENT_DELETED",
    "WatchEvent", "WatchRegistry",
    "ZkConfig", "ZkServer",
    "SessionExpired", "ZkClient",
    "ZkEnsemble",
    "Barrier", "DistributedLock", "DistributedQueue", "LeaderElection",
]
