"""The znode tree — ZooKeeper's replicated data model.

A pure, deterministic state machine: every ensemble member applies the
same committed transactions in zxid order and therefore holds an
identical tree.  Keeping it pure (no network, no clocks) is what lets
the ensemble replicate it and lets tests drive it directly.

Supported znode species, matching ZooKeeper:

* persistent — survives its creator.
* ephemeral — deleted automatically when the owning session dies
  (Sedna real nodes register themselves this way, §III.D).
* sequential — a monotonically increasing 10-digit counter is appended
  to the requested name.

Every znode carries a ``Stat`` (creation/modify transaction ids and
version counter) used for conditional set/delete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Stat", "Znode", "ZnodeTree", "ZkError", "NoNodeError",
           "NodeExistsError", "NotEmptyError", "BadVersionError",
           "validate_path"]


class ZkError(Exception):
    """Base class for ZooKeeper data-model errors."""


class NoNodeError(ZkError):
    """Path does not exist."""


class NodeExistsError(ZkError):
    """Create on an existing path."""


class NotEmptyError(ZkError):
    """Delete on a znode that still has children."""


class BadVersionError(ZkError):
    """Conditional set/delete with a stale version."""


def validate_path(path: str) -> None:
    """Reject malformed paths (must be absolute, no trailing slash)."""
    if not path.startswith("/"):
        raise ZkError(f"path must start with '/': {path!r}")
    if path != "/" and path.endswith("/"):
        raise ZkError(f"path must not end with '/': {path!r}")
    if "//" in path:
        raise ZkError(f"empty path component: {path!r}")


def parent_of(path: str) -> str:
    """Parent path of ``path`` ('/a/b' -> '/a', '/a' -> '/')."""
    idx = path.rfind("/")
    return path[:idx] if idx > 0 else "/"


@dataclass
class Stat:
    """Znode metadata, the subset of ZooKeeper's Stat that matters here."""

    czxid: int = 0           # zxid of the create
    mzxid: int = 0           # zxid of the last set
    version: int = 0         # data version, bumped by each set
    cversion: int = 0        # child-list version
    ephemeral_owner: int = 0  # session id, 0 for persistent nodes
    num_children: int = 0


@dataclass
class Znode:
    """One tree node: payload bytes, stat, children by name."""

    data: bytes = b""
    stat: Stat = field(default_factory=Stat)
    children: dict[str, "Znode"] = field(default_factory=dict)
    seq_counter: int = 0  # for sequential children


class ZnodeTree:
    """The hierarchical namespace, applied-transaction side.

    All mutating methods take the ``zxid`` of the committed transaction
    so stats stay identical across replicas.
    """

    def __init__(self):
        self.root = Znode()
        self._ephemerals: dict[int, set[str]] = {}  # session -> paths

    # -- traversal ------------------------------------------------------
    def _walk(self, path: str) -> Optional[Znode]:
        if path == "/":
            return self.root
        node = self.root
        for part in path.strip("/").split("/"):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _require(self, path: str) -> Znode:
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        return node

    # -- operations -----------------------------------------------------
    def create(self, path: str, data: bytes, zxid: int,
               ephemeral_owner: int = 0, sequential: bool = False) -> str:
        """Create a znode; returns the actual path (sequence applied)."""
        validate_path(path)
        if path == "/":
            raise NodeExistsError("/")
        parent_path = parent_of(path)
        parent = self._walk(parent_path)
        if parent is None:
            raise NoNodeError(f"parent of {path}: {parent_path}")
        if parent.stat.ephemeral_owner:
            raise ZkError("ephemeral znodes cannot have children")
        name = path[path.rfind("/") + 1:]
        if sequential:
            name = f"{name}{parent.seq_counter:010d}"
            parent.seq_counter += 1
            path = (parent_path if parent_path != "/" else "") + "/" + name
        if name in parent.children:
            raise NodeExistsError(path)
        node = Znode(data=bytes(data))
        node.stat.czxid = zxid
        node.stat.mzxid = zxid
        node.stat.ephemeral_owner = ephemeral_owner
        parent.children[name] = node
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        if ephemeral_owner:
            self._ephemerals.setdefault(ephemeral_owner, set()).add(path)
        return path

    def get(self, path: str) -> tuple[bytes, Stat]:
        """(data, stat) of ``path``; raises :class:`NoNodeError`."""
        validate_path(path)
        node = self._require(path)
        return node.data, node.stat

    def set(self, path: str, data: bytes, zxid: int,
            expected_version: int = -1) -> Stat:
        """Replace data; ``expected_version`` -1 skips the version check."""
        validate_path(path)
        node = self._require(path)
        if expected_version != -1 and node.stat.version != expected_version:
            raise BadVersionError(
                f"{path}: have {node.stat.version}, expected {expected_version}")
        node.data = bytes(data)
        node.stat.version += 1
        node.stat.mzxid = zxid
        return node.stat

    def delete(self, path: str, zxid: int, expected_version: int = -1) -> None:
        """Remove a childless znode, optionally version-checked."""
        validate_path(path)
        if path == "/":
            raise ZkError("cannot delete the root")
        node = self._require(path)
        if node.children:
            raise NotEmptyError(path)
        if expected_version != -1 and node.stat.version != expected_version:
            raise BadVersionError(
                f"{path}: have {node.stat.version}, expected {expected_version}")
        parent = self._require(parent_of(path))
        name = path[path.rfind("/") + 1:]
        del parent.children[name]
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        if node.stat.ephemeral_owner:
            owned = self._ephemerals.get(node.stat.ephemeral_owner)
            if owned is not None:
                owned.discard(path)

    def exists(self, path: str) -> Optional[Stat]:
        """Stat when present, None otherwise."""
        validate_path(path)
        node = self._walk(path)
        return node.stat if node is not None else None

    def get_children(self, path: str) -> list[str]:
        """Sorted child names; raises :class:`NoNodeError`."""
        validate_path(path)
        return sorted(self._require(path).children)

    def ephemerals_of(self, session_id: int) -> list[str]:
        """Paths owned by ``session_id`` (deepest first, safe to delete)."""
        paths = self._ephemerals.get(session_id, set())
        return sorted(paths, key=lambda p: -p.count("/"))

    def remove_session(self, session_id: int, zxid: int) -> list[str]:
        """Delete every ephemeral of a dead session; returns the paths."""
        removed = []
        for path in self.ephemerals_of(session_id):
            try:
                self.delete(path, zxid)
                removed.append(path)
            except (NoNodeError, NotEmptyError):
                continue
        self._ephemerals.pop(session_id, None)
        return removed

    # -- replication helpers -------------------------------------------------
    def dump(self) -> dict:
        """Serializable full snapshot (leader -> lagging follower sync)."""
        def encode(node: Znode) -> dict:
            return {
                "data": node.data,
                "stat": vars(node.stat).copy(),
                "seq": node.seq_counter,
                "children": {name: encode(child)
                             for name, child in node.children.items()},
            }
        return {"root": encode(self.root),
                "ephemerals": {sid: sorted(paths)
                               for sid, paths in self._ephemerals.items()}}

    @classmethod
    def load(cls, snapshot: dict) -> "ZnodeTree":
        """Rebuild a tree from :meth:`dump` output."""
        def decode(blob: dict) -> Znode:
            node = Znode(data=blob["data"])
            node.stat = Stat(**blob["stat"])
            node.seq_counter = blob["seq"]
            node.children = {name: decode(child)
                             for name, child in blob["children"].items()}
            return node
        tree = cls()
        tree.root = decode(snapshot["root"])
        tree._ephemerals = {sid: set(paths)
                            for sid, paths in snapshot["ephemerals"].items()}
        return tree

    def walk_paths(self) -> Iterator[str]:
        """Every path in the tree, depth-first (diagnostics/tests)."""
        def rec(prefix: str, node: Znode) -> Iterator[str]:
            for name, child in sorted(node.children.items()):
                path = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
                yield path
                yield from rec(path, child)
        yield from rec("/", self.root)
