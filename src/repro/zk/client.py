"""ZooKeeper client: sessions, retries, watches.

The client connects to one ensemble member, keeps its session alive
with pings, and transparently rotates to another member when its server
stops answering — exactly what a Sedna real node does with its
ZooKeeper handle (§III.D).

All blocking operations are process helpers: call them with
``yield from`` inside a simulation process, e.g.::

    def boot(zk):
        yield from zk.connect()
        yield from zk.create("/sedna", b"")
        data, stat = yield from zk.get("/sedna")
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.rpc import RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Simulator
from ..net.transport import Network
from .server import ZkConfig
from .znode import (BadVersionError, NodeExistsError, NoNodeError,
                    NotEmptyError, ZkError)

__all__ = ["SessionExpired", "ZkClient"]


class SessionExpired(ZkError):
    """The ensemble expired our session; ephemerals are gone."""


_ERROR_MAP = {
    "NoNodeError": NoNodeError,
    "NodeExistsError": NodeExistsError,
    "NotEmptyError": NotEmptyError,
    "BadVersionError": BadVersionError,
    "ZkError": ZkError,
}


def _translate(rej: RpcRejected) -> Exception:
    """Map a server-side refusal back to the typed ZK exception."""
    reason = rej.reason or ""
    name, _, detail = reason.partition(":")
    if name in _ERROR_MAP:
        return _ERROR_MAP[name](detail)
    if reason == "session-expired":
        return SessionExpired()
    return rej


class ZkClient:
    """A session-holding ZooKeeper client.

    Parameters
    ----------
    sim, network:
        The simulation substrate.
    name:
        Endpoint name for this client (unique per simulation).
    servers:
        Ensemble member endpoint names.
    config:
        Shared :class:`~repro.zk.server.ZkConfig` for timing defaults.
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 servers: list[str], config: Optional[ZkConfig] = None,
                 metrics=None):
        self.sim = sim
        self.name = name
        self.servers = list(servers)
        self.config = config if config is not None else ZkConfig()
        self.rpc = RpcNode(network, name)
        self.rpc.on_notify(self._on_notify)
        self.session_id: Optional[int] = None
        self.session_timeout = self.config.session_timeout
        self.expired = False
        self._server_idx = 0
        # Monotonic-read frontier: the newest (epoch, zxid) any read has
        # observed.  Sent with every read so a member that lags behind
        # it refuses to serve us (real ZooKeeper pins a session to its
        # last-seen zxid on reconnect).  Without this, rotating to a
        # lagging follower mid-refresh can un-happen state we already
        # saw — e.g. a changelog child listed by one member vanishing
        # on the next ``get``.
        self.last_epoch = 0
        self.last_zxid = 0
        self._watch_callbacks: dict[str, list[Callable[[dict], None]]] = {}
        self._ping_proc = None
        # Stats for the ZK-usage benches.
        self.ops_sent = 0
        self.retries = 0
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_reads = metrics.counter("zk.reads", node=name)
        self._m_writes = metrics.counter("zk.writes", node=name)
        self._m_watch_set = metrics.counter("zk.watches_set", node=name)
        self._m_watch_fired = metrics.counter("zk.watches_fired", node=name)
        self._m_retries = metrics.counter("zk.retries", node=name)

    # -- connection management ---------------------------------------------
    @property
    def connected(self) -> bool:
        """True while we hold an unexpired session."""
        return self.session_id is not None and not self.expired

    def current_server(self) -> str:
        return self.servers[self._server_idx % len(self.servers)]

    def _rotate(self) -> None:
        self._server_idx += 1
        self.retries += 1
        self._m_retries.inc()

    def _call(self, method: str, args: Any):
        """Issue an RPC with server rotation on connectivity failures."""
        attempts = 2 * len(self.servers) + 1
        last: Exception = RpcTimeout("unreachable")
        for _ in range(attempts):
            self.ops_sent += 1
            if isinstance(args, dict) and "zxid" in args and "epoch" in args:
                # Re-stamp the read frontier at every attempt.  A retry
                # can go out long after the call was built, and other
                # processes multiplexed over this session (lease
                # refresh vs. targeted invalidation) may have advanced
                # the frontier meanwhile; carrying the original
                # snapshot would let a lagging member pass the
                # server-behind check and serve data that un-happens
                # state this session already observed.  (A real
                # ZooKeeper session cannot race itself like this — its
                # ops are serialized on one connection.)
                args = dict(args, epoch=self.last_epoch,
                            zxid=self.last_zxid)
            try:
                result = yield from self.rpc.call(
                    self.current_server(), method, args,
                    timeout=self.config.proposal_timeout)
                return result
            except RpcTimeout as err:
                last = err
                self._rotate()
            except RpcRejected as rej:
                if rej.reason in ("no-leader", "leader-timeout", "not-leader",
                                  "server-behind"):
                    last = rej
                    self._rotate()
                    yield self.sim.timeout(self.config.rpc_timeout)
                    continue
                raise _translate(rej)
        raise last

    def connect(self, timeout: Optional[float] = None):
        """Open a session and start the keep-alive pinger."""
        # Fail-fast by design: _call already rotated through every
        # server, so an escape here means the whole ensemble is down
        # and the connecting process should crash visibly.
        # repro: allow[rpc-unhandled-failure]
        result = yield from self._call("zk.connect",
                                       {"timeout": timeout})
        self.session_id = result["session"]
        self.session_timeout = result["timeout"]
        self.expired = False
        self._ping_proc = self.sim.process(self._pinger(),
                                           name=f"{self.name}-pinger")
        return self.session_id

    def _pinger(self):
        interval = self.session_timeout / 3.0
        while self.connected and self.rpc.endpoint.up:
            yield self.sim.timeout(interval)
            if not (self.connected and self.rpc.endpoint.up):
                return
            try:
                yield from self._call("zk.ping", {"session": self.session_id})
            except SessionExpired:
                self.expired = True
                return
            except (RpcTimeout, RpcRejected):
                continue  # rotation already happened inside _call

    def close(self):
        """Close the session gracefully (removes our ephemerals)."""
        if self.session_id is None:
            return
        try:
            yield from self._call("zk.close", {"session": self.session_id})
        except (RpcTimeout, RpcRejected, ZkError):
            pass
        self.session_id = None

    def crash(self) -> None:
        """Simulate client death: endpoint down, pings stop, session will
        expire on the leader and ephemerals will vanish (§III.D)."""
        self.rpc.endpoint.crash()

    # -- data operations ---------------------------------------------------
    def _write(self, op: dict):
        self._m_writes.inc()
        # Fail-fast by design: total-ensemble outage during a metadata
        # write crashes the writing process rather than ack silently.
        # repro: allow[rpc-unhandled-failure]
        result = yield from self._call("zk.write",
                                       {"session": self.session_id or 0,
                                        "op": op})
        return result

    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False):
        """Create a znode; returns the actual path."""
        result = yield from self._write({"type": "create", "path": path,
                                         "data": data, "ephemeral": ephemeral,
                                         "sequential": sequential})
        return result["path"]

    def ensure_path(self, path: str):
        """Create all missing ancestors of ``path`` (and ``path`` itself)."""
        parts = [p for p in path.strip("/").split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            try:
                yield from self.create(current)
            except NodeExistsError:
                pass
        return path

    def set(self, path: str, data: bytes, version: int = -1):
        """Replace data; returns the new stat dict."""
        result = yield from self._write({"type": "set", "path": path,
                                         "data": data, "version": version})
        return result["stat"]

    def delete(self, path: str, version: int = -1):
        """Delete a childless znode."""
        yield from self._write({"type": "delete", "path": path,
                                "version": version})

    def sync(self):
        """Catch the connected member up to the leader's zxid before
        reading (read-your-writes across members)."""
        result = yield from self._call("zk.sync", {})
        return result["zxid"]

    # -- transactions --------------------------------------------------------
    @staticmethod
    def op_create(path: str, data: bytes = b"", ephemeral: bool = False,
                  sequential: bool = False) -> dict:
        """Builder: a create step for :meth:`multi`."""
        return {"type": "create", "path": path, "data": data,
                "ephemeral": ephemeral, "sequential": sequential}

    @staticmethod
    def op_set(path: str, data: bytes, version: int = -1) -> dict:
        """Builder: a set step for :meth:`multi`."""
        return {"type": "set", "path": path, "data": data,
                "version": version}

    @staticmethod
    def op_delete(path: str, version: int = -1) -> dict:
        """Builder: a delete step for :meth:`multi`."""
        return {"type": "delete", "path": path, "version": version}

    def multi(self, ops: list[dict]):
        """Atomic batch: all steps apply or none do (watches fire only
        on commit).  Returns the per-step results."""
        result = yield from self._write({"type": "multi", "ops": list(ops)})
        return result["results"]

    def _advance_frontier(self, result: dict) -> None:
        """Adopt the answering member's (epoch, zxid) if it is newer."""
        seen = (result.get("epoch", 0), result.get("zxid", 0))
        if seen > (self.last_epoch, self.last_zxid):
            self.last_epoch, self.last_zxid = seen

    def get(self, path: str, watch: Optional[Callable[[dict], None]] = None):
        """(data, stat) with an optional one-shot data watch."""
        args = {"op": "get", "path": path, "watch": watch is not None,
                "watcher": self.name, "epoch": self.last_epoch,
                "zxid": self.last_zxid}
        self._m_reads.inc()
        result = yield from self._call("zk.read", args)
        self._advance_frontier(result)
        if watch is not None:
            self._m_watch_set.inc()
            self._watch_callbacks.setdefault(path, []).append(watch)
        return result["data"], result["stat"]

    def exists(self, path: str, watch: Optional[Callable[[dict], None]] = None):
        """Stat dict or None, with an optional one-shot watch."""
        args = {"op": "exists", "path": path, "watch": watch is not None,
                "watcher": self.name, "epoch": self.last_epoch,
                "zxid": self.last_zxid}
        self._m_reads.inc()
        # Fail-fast by design: see connect().
        # repro: allow[rpc-unhandled-failure]
        result = yield from self._call("zk.read", args)
        self._advance_frontier(result)
        if watch is not None:
            self._m_watch_set.inc()
            self._watch_callbacks.setdefault(path, []).append(watch)
        return result["stat"]

    def get_children(self, path: str,
                     watch: Optional[Callable[[dict], None]] = None):
        """Sorted child names, with an optional one-shot child watch."""
        args = {"op": "get_children", "path": path, "watch": watch is not None,
                "watcher": self.name, "epoch": self.last_epoch,
                "zxid": self.last_zxid}
        self._m_reads.inc()
        # Fail-fast by design: see connect().
        # repro: allow[rpc-unhandled-failure]
        result = yield from self._call("zk.read", args)
        self._advance_frontier(result)
        if watch is not None:
            self._m_watch_set.inc()
            self._watch_callbacks.setdefault(path, []).append(watch)
        return result["children"]

    # -- watch dispatch ------------------------------------------------------
    def _on_notify(self, src: str, body: Any) -> None:
        if body.get("zk") != "watch":
            return
        event = body["event"]
        callbacks = self._watch_callbacks.pop(event["path"], [])
        if callbacks:
            self._m_watch_fired.inc(len(callbacks))
        for cb in callbacks:
            cb(event)
