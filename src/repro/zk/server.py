"""One ZooKeeper ensemble member (ZAB-lite).

Protocol summary (a deliberately simplified but behaviourally faithful
ZooKeeper Atomic Broadcast):

* One **leader** orders all writes: it assigns a monotonically growing
  ``zxid``, sends the proposal to every follower in parallel, and
  commits once a *majority* of the ensemble (counting itself) has
  acknowledged.  Commits are applied strictly in zxid order on every
  member, so all trees stay identical.
* **Followers** serve reads from their local applied tree (ZooKeeper's
  read-scalability property the paper leans on, §III.E) and forward
  writes, session opens and pings to the leader.
* **Sessions** are replicated transactions; the liveness clock is
  leader-local.  Expiry commits a ``session_close`` that removes the
  session's ephemerals.
* **Failover**: the leader multicasts heartbeats; a follower that
  misses them starts an election.  The candidate with the highest
  ``(epoch, last_zxid, name)`` among reachable members claims
  leadership with a bumped epoch and lagging members sync a full
  snapshot.  A leader that cannot gather a proposal quorum *steps
  down* — it may be minority-partitioned, and committing locally
  without majority agreement would diverge from the elected history.

Timing constants live in :class:`ZkConfig`; defaults are scaled to the
paper's sub-millisecond LAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..net.latency import ZK_READ_OP
from ..net.rpc import (RpcError, RpcNode, RpcRejected, RpcTimeout,
                       gather_quorum)
from ..net.simulator import Simulator
from ..net.transport import Network
from .session import SessionTable
from .watches import WatchRegistry
from .znode import ZkError, ZnodeTree, parent_of

__all__ = ["ZkConfig", "ZkServer"]


@dataclass
class ZkConfig:
    """Ensemble timing and behaviour knobs (simulated seconds)."""

    session_timeout: float = 2.0       # default client session timeout
    expiry_check_interval: float = 0.5  # leader scan for dead sessions
    leader_beat_interval: float = 0.4   # leader heartbeat multicast
    beats_missed_for_election: int = 3
    rpc_timeout: float = 0.5            # intra-ensemble call deadline
    proposal_timeout: float = 1.0       # quorum wait deadline


class ZkServer:
    """One ensemble member: RPC surface, replicated tree, election logic."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 peers: list[str], config: Optional[ZkConfig] = None,
                 disk=None):
        self.sim = sim
        self.name = name
        self.peers = [p for p in peers if p != name]
        self.config = config if config is not None else ZkConfig()
        self.rpc = RpcNode(network, name, service_time=ZK_READ_OP)
        self.rpc.on_notify(self._on_notify)
        # Optional transaction log on a crash-surviving disk: real
        # ZooKeeper logs every committed txn before applying, so the
        # ensemble's state (Sedna's vnode mapping!) survives a
        # whole-datacenter power loss.
        self.disk = disk
        self._txn_log = f"{name}.zk-txnlog"

        # Replicated state.
        self.tree = ZnodeTree()
        self.sessions = SessionTable()
        self.applied_zxid = 0

        # Member-local state.
        self.watches = WatchRegistry()
        self.role = "follower"
        self.epoch = 0
        self.leader_name: Optional[str] = None
        self.last_beat = 0.0
        self.running = False
        self._electing = False

        # Ordered-commit machinery.
        self._pending: dict[int, dict] = {}       # proposed, not committed
        self._commit_buffer: dict[int, dict] = {}  # committed, out of order
        self._result_events: dict[int, Any] = {}   # leader: zxid -> Event
        self._gap_healing = False                  # snapshot-sync in flight
        self._heal_target = 0                      # committed zxid seen in beats

        # Leader-only counters.
        self.next_zxid = 0
        self._session_counter = 0

        # Stats for the ZK-bottleneck bench.
        self.reads_served = 0
        self.writes_led = 0
        self.watch_events_sent = 0

        self._register_rpc()

    # -- ensemble size helpers -------------------------------------------
    @property
    def ensemble_size(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.ensemble_size // 2 + 1

    @property
    def is_leader(self) -> bool:
        return self.role == "leader"

    # -- lifecycle ----------------------------------------------------------
    def start(self, as_leader: bool = False) -> None:
        """Boot the member; ``as_leader`` seeds the initial ensemble."""
        self.running = True
        if as_leader:
            self._become_leader(self.epoch + 1)
        else:
            self.last_beat = self.sim.now
            self.sim.process(self._follower_watchdog(), name=f"{self.name}-watchdog")

    def stop(self) -> None:
        """Crash the member (endpoint down, processes wind down)."""
        self.running = False
        self.rpc.endpoint.crash()

    def restart(self) -> None:
        """Bring a crashed member back as a follower; it will sync."""
        self.rpc.endpoint.restart()
        self.running = True
        self.role = "follower"
        self._electing = False
        self.last_beat = self.sim.now
        self.sim.process(self._follower_watchdog(), name=f"{self.name}-watchdog")
        self.sim.process(self._sync_from(self.leader_name), name=f"{self.name}-resync")

    def recover_from_disk(self) -> int:
        """Replay the on-disk transaction log into fresh state.

        Used for cold restarts (whole-ensemble power loss): state is
        rebuilt locally before any peer is reachable.  Returns the
        highest zxid recovered.
        """
        if self.disk is None:
            return 0
        self.tree = ZnodeTree()
        self.sessions = SessionTable()
        self.applied_zxid = 0
        self._pending.clear()
        self._commit_buffer.clear()
        for zxid, op in self.disk.read_log(self._txn_log):
            if zxid == self.applied_zxid + 1:
                self._apply(zxid, op)
        self.next_zxid = max(self.next_zxid, self.applied_zxid)
        return self.applied_zxid

    def cold_restart(self, as_leader: bool = False) -> None:
        """Full restart after power loss: replay disk, then rejoin."""
        self.recover_from_disk()
        self.rpc.endpoint.restart()
        self.running = True
        self._electing = False
        if as_leader:
            self._become_leader(self.epoch + 1)
        else:
            self.role = "follower"
            self.last_beat = self.sim.now
            self.sim.process(self._follower_watchdog(),
                             name=f"{self.name}-watchdog")

    # -- RPC registration -----------------------------------------------------
    def _register_rpc(self) -> None:
        r = self.rpc.register
        # Client-facing.
        r("zk.connect", self._h_connect)
        r("zk.ping", self._h_ping)
        r("zk.read", self._h_read)
        r("zk.write", self._h_write)
        r("zk.close", self._h_close)
        # Peer-facing.  Commit and new-leader announcements travel the
        # one-way notify channel (_on_notify -> _on_commit /
        # _adopt_leader), not request/response RPC, so they have no
        # entries here.
        r("zk.propose", self._h_propose)
        r("zk.sync_req", self._h_sync_req)
        r("zk.sync", self._h_sync)
        r("zk.vote_req", self._h_vote_req)

    # ======================================================================
    # Client-facing handlers
    # ======================================================================
    def _h_connect(self, src: str, args: Any):
        """Open a session (forwarded to the leader)."""
        if not self.is_leader:
            return self._forward("zk.connect", args)
        self._session_counter += 1
        session_id = (self.epoch << 32) | self._session_counter
        timeout = args.get("timeout") or self.config.session_timeout
        op = {"type": "session_open", "session": session_id,
              "timeout": timeout}
        ev = self._lead_proposal(op)
        result = self.sim.event()

        def done(done_ev):
            if done_ev.ok:
                result.succeed({"session": session_id, "timeout": timeout})
            else:
                result.fail(done_ev.value)
        self._chain(ev, done)
        return result

    def _h_ping(self, src: str, args: Any):
        """Session keep-alive; leader records, follower forwards."""
        if not self.is_leader:
            return self._forward("zk.ping", args)
        if not self.sessions.ping(args["session"], self.sim.now):
            raise RpcRejected("session-expired")
        return "pong"

    def _h_close(self, src: str, args: Any):
        """Graceful session close."""
        if not self.is_leader:
            return self._forward("zk.close", args)
        if args["session"] not in self.sessions:
            return "closed"
        return self._lead_proposal({"type": "session_close",
                                    "session": args["session"]})

    def _h_read(self, src: str, args: Any):
        """Serve get/exists/get_children locally; register watches.

        A client whose read frontier (epoch, zxid) is ahead of our
        applied state is refused with ``server-behind`` — serving it
        would un-happen data it already observed (the session-level
        monotonic-read guarantee real ZooKeeper enforces on
        reconnect).  The client rotates to a caught-up member.
        """
        if ((args.get("epoch", 0), args.get("zxid", 0))
                > (self.epoch, self.applied_zxid)):
            raise RpcRejected("server-behind")
        self.reads_served += 1
        op = args["op"]
        path = args["path"]
        watch = args.get("watch", False)
        watcher = args.get("watcher", src)
        frontier = {"epoch": self.epoch, "zxid": self.applied_zxid}
        try:
            if op == "get":
                data, stat = self.tree.get(path)
                if watch:
                    self.watches.add_data(path, watcher)
                return {"data": data, "stat": vars(stat).copy(), **frontier}
            if op == "exists":
                stat = self.tree.exists(path)
                if watch:
                    self.watches.add_data(path, watcher)
                return {"stat": vars(stat).copy() if stat else None,
                        **frontier}
            if op == "get_children":
                children = self.tree.get_children(path)
                if watch:
                    self.watches.add_child(path, watcher)
                return {"children": children, **frontier}
        except ZkError as err:
            raise RpcRejected(f"{type(err).__name__}:{err}")
        raise RpcRejected(f"unknown-read-op:{op}")

    def _h_write(self, src: str, args: Any):
        """Forward writes to the leader; lead them when we are it."""
        if not self.is_leader:
            return self._forward("zk.write", args)
        op = dict(args["op"])
        session = args.get("session", 0)
        if op.get("ephemeral") and session not in self.sessions:
            raise RpcRejected("session-expired")
        op["session"] = session
        self.writes_led += 1
        return self._lead_proposal(op)

    def _forward(self, method: str, args: Any):
        """Relay a request to the current leader; deferred result."""
        if self.leader_name is None or self.leader_name == self.name:
            raise RpcRejected("no-leader")
        result = self.sim.event()
        call = self.rpc.call_async(self.leader_name, method, args)
        deadline = self.sim.timeout(self.config.proposal_timeout)

        def check(_ev):
            if result.triggered:
                return
            if call.triggered:
                if call.ok:
                    result.succeed(call.value)
                else:
                    result.fail(call.value)
            elif deadline.triggered:
                result.fail(RpcRejected("leader-timeout"))
        call.callbacks.append(check)
        deadline.callbacks.append(check)
        return result

    @staticmethod
    def _chain(ev, callback) -> None:
        """Attach ``callback`` whether or not ``ev`` has already fired."""
        if ev.callbacks is None:
            callback(ev)
        else:
            ev.callbacks.append(callback)

    # ======================================================================
    # Leader: proposal / commit pipeline
    # ======================================================================
    def _lead_proposal(self, op: dict):
        """Run the ZAB round for ``op``; returns a deferred result event."""
        self.next_zxid += 1
        zxid = self.next_zxid
        result = self.sim.event()
        # Background proposals (e.g. session expiry) may ignore the
        # outcome; a quorum failure is then simply dropped.
        result.callbacks.append(lambda _e: None)
        self._result_events[zxid] = result
        self.sim.process(self._proposal_round(zxid, op),
                         name=f"{self.name}-prop-{zxid}")
        return result

    def _proposal_round(self, zxid: int, op: dict):
        acks_needed = self.majority - 1  # self counts as one ack
        epoch = self.epoch
        payload = {"epoch": epoch, "zxid": zxid, "op": op}
        if acks_needed > 0:
            events = [self.rpc.call_async(peer, "zk.propose", payload)
                      for peer in self.peers]
            try:
                yield from gather_quorum(self.sim, events, acks_needed,
                                         self.config.proposal_timeout)
            except RpcError as err:
                ev = self._result_events.pop(zxid, None)
                if ev is not None and not ev.triggered:
                    ev.fail(RpcRejected(f"quorum-failed:{err}"))
                # No majority reachable: we may be on the minority side
                # of a partition, and anything committed locally from
                # here on could diverge from the history the majority
                # elects.  Step down — the allocated zxid dies with
                # this reign and the next leader reuses it in a new
                # epoch, so the commit stream stays gapless.
                self._step_down(f"quorum-failed:{err}")
                return
        if not (self.running and self.is_leader and self.epoch == epoch):
            # Deposed (or stepped down) while this round was in flight.
            ev = self._result_events.pop(zxid, None)
            if ev is not None and not ev.triggered:
                ev.fail(RpcRejected("leader-changed"))
            return
        # Commit locally (in order) and tell the followers.
        self._commit(zxid, op)
        for peer in self.peers:
            self.rpc.notify(peer, {"zk": "commit", "zxid": zxid, "op": op,
                                   "epoch": self.epoch})

    def _step_down(self, reason: str) -> None:
        """Abdicate after losing contact with the majority.

        Every caller still waiting on a round is failed, and the
        pending/commit buffers are dropped: rounds wedged behind the
        failed one were never observed as committed by any client, and
        keeping them would let them apply after a new leader reuses
        their zxids for different operations.
        """
        if not self.is_leader:
            return
        self.role = "follower"
        self.leader_name = None
        self.last_beat = self.sim.now
        for zxid in list(self._result_events):
            ev = self._result_events.pop(zxid)
            if not ev.triggered:
                ev.fail(RpcRejected(f"leader-stepped-down:{reason}"))
        self._pending.clear()
        self._commit_buffer.clear()
        self.next_zxid = self.applied_zxid
        self.sim.process(self._follower_watchdog(),
                         name=f"{self.name}-watchdog")

    def _h_propose(self, src: str, args: Any):
        """Follower side: log the proposal and ack."""
        if args["epoch"] < self.epoch:
            raise RpcRejected("stale-epoch")
        self._pending[args["zxid"]] = args["op"]
        return "ack"

    def _on_commit(self, zxid: int, op: Optional[dict], epoch: int,
                   src: Optional[str] = None) -> None:
        if epoch < self.epoch:
            return
        if zxid <= self.applied_zxid:
            if epoch > self.epoch:
                # A newer-epoch leader is committing at or below our
                # applied frontier: our tail was earned under a deposed
                # reign and diverged.  Snapshot sync truncates it.
                self.sim.process(self._sync_from(src or self.leader_name,
                                                 force=True))
            return
        known = self._pending.pop(zxid, None)
        if op is None:
            op = known  # fall back to the proposal we logged
        if op is None:
            self.sim.process(self._sync_from(self.leader_name))
            return
        # The commit's op is authoritative over the logged proposal:
        # applying a proposal the leader replaced would diverge.
        self._commit(zxid, op)

    def _commit(self, zxid: int, op: dict) -> None:
        """Buffer the commit and apply every consecutive zxid."""
        self._commit_buffer[zxid] = op
        self._apply_ready()
        if self._commit_buffer and not self.is_leader:
            # A buffered commit we cannot apply means an earlier commit
            # notify was lost (they are fire-and-forget): without
            # intervention this member wedges at applied_zxid forever
            # and serves permanently stale reads.  Pull a snapshot.
            # (The leader's own buffer gaps come from rounds finishing
            # out of order and always drain by themselves.)
            self._start_gap_heal()

    def _start_gap_heal(self) -> None:
        if not self._gap_healing:
            self._gap_healing = True
            self.sim.process(self._heal_gap(), name=f"{self.name}-gap-heal")

    def _behind(self) -> bool:
        """A known commit we cannot reach by applying in order."""
        if (self._commit_buffer
                and min(self._commit_buffer) > self.applied_zxid + 1):
            return True
        return self.applied_zxid < self._heal_target

    def _apply_ready(self) -> None:
        """Apply every consecutive buffered commit."""
        while self.applied_zxid + 1 in self._commit_buffer:
            z = self.applied_zxid + 1
            todo = self._commit_buffer.pop(z)
            if self.disk is not None:
                self.disk.append(self._txn_log, (z, todo))
            outcome = self._apply(z, todo)
            ev = self._result_events.pop(z, None)
            if ev is not None and not ev.triggered:
                if isinstance(outcome, ZkError):
                    ev.fail(RpcRejected(f"{type(outcome).__name__}:{outcome}"))
                else:
                    ev.succeed(outcome)

    def _heal_gap(self):
        """Close a commit gap via snapshot sync, retrying while it lasts."""
        try:
            # Grace first: the missing commit usually arrives within an
            # RTT when it was merely reordered rather than dropped.
            yield self.sim.timeout(self.config.rpc_timeout)
            while self.running and not self.is_leader and self._behind():
                yield from self._sync_from(self.leader_name)
                self._apply_ready()
                if self._behind():
                    yield self.sim.timeout(self.config.rpc_timeout)
        finally:
            self._gap_healing = False

    def _apply(self, zxid: int, op: dict):
        """Apply one committed txn to the replicated state.

        Deterministic across members; returns the op result or the
        :class:`ZkError` it raised.  Fires local watches.
        """
        self.applied_zxid = zxid
        if self.is_leader and zxid > self.next_zxid:
            self.next_zxid = zxid
        kind = op["type"]
        try:
            if kind in ("create", "set", "delete"):
                pending: list[tuple[str, str]] = []
                result = self._apply_datum(zxid, op, pending)
                for op_type, path in pending:
                    self._fire_watches(op_type, path)
                return result
            if kind == "multi":
                # Atomic transaction: apply against the real tree, roll
                # back from a snapshot if any sub-op fails.  Watches
                # fire only when the whole transaction commits.
                backup = self.tree.dump()
                pending = []
                results = []
                try:
                    for sub in op["ops"]:
                        sub = dict(sub)
                        sub.setdefault("session", op.get("session", 0))
                        results.append(self._apply_datum(zxid, sub, pending))
                except ZkError as err:
                    self.tree = ZnodeTree.load(backup)
                    return err
                for op_type, path in pending:
                    self._fire_watches(op_type, path)
                return {"results": results}
            if kind == "session_open":
                self.sessions.open(op["session"], op["timeout"], self.sim.now)
                return {}
            if kind == "session_close":
                self.sessions.close(op["session"])
                removed = self.tree.remove_session(op["session"], zxid)
                for path in removed:
                    self._fire_watches("delete", path)
                return {"removed": removed}
        except ZkError as err:
            return err
        return ZkError(f"unknown-op:{kind}")

    def _apply_datum(self, zxid: int, op: dict,
                     pending_watches: list) -> dict:
        """Apply one data mutation; raises :class:`ZkError` on failure.

        Watch firings are appended to ``pending_watches`` instead of
        sent immediately, so multi transactions can defer them until
        the whole batch commits.
        """
        kind = op["type"]
        if kind == "create":
            owner = op.get("session", 0) if op.get("ephemeral") else 0
            actual = self.tree.create(op["path"], op["data"], zxid,
                                      ephemeral_owner=owner,
                                      sequential=op.get("sequential", False))
            pending_watches.append(("create", actual))
            return {"path": actual}
        if kind == "set":
            stat = self.tree.set(op["path"], op["data"], zxid,
                                 op.get("version", -1))
            pending_watches.append(("set", op["path"]))
            return {"stat": vars(stat).copy()}
        if kind == "delete":
            self.tree.delete(op["path"], zxid, op.get("version", -1))
            pending_watches.append(("delete", op["path"]))
            return {}
        raise ZkError(f"unknown-multi-op:{kind}")

    def _fire_watches(self, op_type: str, path: str) -> None:
        for client, event in self.watches.events_for_txn(
                op_type, path, parent_of(path)):
            self.watch_events_sent += 1
            self.rpc.notify(client, {"zk": "watch", "event": dict(event)})

    # ======================================================================
    # Leader duties: heartbeats and session expiry
    # ======================================================================
    def _become_leader(self, epoch: int) -> None:
        self.role = "leader"
        self.epoch = epoch
        self.leader_name = self.name
        self._electing = False
        # Proposals and buffered commits we logged as a *follower* of
        # the previous reign are orphans now, exactly as in
        # _adopt_leader: the zxids they sit at are about to be
        # re-allocated by our own reign (next_zxid below restarts from
        # the applied frontier).  Keeping them lets a stale buffered
        # commit apply on the leader alone the moment the new reign's
        # frontier reaches its zxid — same zxid, different op on
        # leader vs followers, and the ensemble diverges permanently.
        self._pending.clear()
        self._commit_buffer.clear()
        # Continue the zxid sequence from our applied history — a fresh
        # leader proposing from zxid 1 would never commit (ordering
        # gap), and zxids allocated under a previous reign of ours that
        # died with a step-down must be reused, not skipped.
        self.next_zxid = self.applied_zxid
        self.sessions.reset_clocks(self.sim.now)
        self.sim.process(self._leader_beats(), name=f"{self.name}-beats")
        self.sim.process(self._expiry_scan(), name=f"{self.name}-expiry")

    def _leader_beats(self):
        while self.running and self.is_leader:
            for peer in self.peers:
                # ``committed`` lets a follower detect a *tail* gap — a
                # lost commit notify with no later commit to reveal it.
                self.rpc.notify(peer, {"zk": "beat", "epoch": self.epoch,
                                       "leader": self.name,
                                       "committed": self.applied_zxid})
            yield self.sim.timeout(self.config.leader_beat_interval)

    def _expiry_scan(self):
        while self.running and self.is_leader:
            yield self.sim.timeout(self.config.expiry_check_interval)
            if not (self.running and self.is_leader):
                return
            for sid in self.sessions.expired(self.sim.now):
                self._lead_proposal({"type": "session_close", "session": sid})

    # ======================================================================
    # Election
    # ======================================================================
    def _follower_watchdog(self):
        wait = (self.config.leader_beat_interval
                * self.config.beats_missed_for_election)
        while self.running and not self.is_leader:
            yield self.sim.timeout(wait)
            if not self.running or self.is_leader or self._electing:
                continue
            if self.sim.now - self.last_beat > wait:
                yield from self._run_election()

    def _run_election(self):
        self._electing = True
        try:
            # Votes compare (epoch, zxid, name): a member that followed
            # the newest reign must win over a deposed leader whose
            # higher zxid is an orphaned tail of an older epoch.
            my_vote = (self.epoch, self.applied_zxid, self.name)
            # The poll payload is diagnostic context for taps/traces;
            # voters answer with their own credentials and ignore it.
            # Dropping the keys would shrink the wire size and shift
            # the latency model, breaking golden digests.
            # repro: allow[rpc-payload-mismatch]
            calls = [self.rpc.call_async(peer, "zk.vote_req",
                                         {"candidate": self.name,
                                          "zxid": self.applied_zxid})
                     for peer in self.peers]
            yield self.sim.timeout(self.config.rpc_timeout)
            votes = [my_vote]
            reachable = 1
            for call in calls:
                if call.triggered and call.ok:
                    votes.append((call.value.get("epoch", 0),
                                  call.value["zxid"], call.value["name"]))
                    reachable += 1
                elif not call.triggered:
                    call.callbacks = None  # defuse the straggler
            if reachable < self.majority:
                return  # cannot form a quorum; retry on next watchdog tick
            if max(votes) == my_vote:
                new_epoch = max(vote[0] for vote in votes) + 1
                self._become_leader(new_epoch)
                for peer in self.peers:
                    self.rpc.notify(peer, {"zk": "new_leader",
                                           "epoch": new_epoch,
                                           "leader": self.name})
        finally:
            self._electing = False

    def _h_vote_req(self, src: str, args: Any):
        """Answer an election poll with our own credentials."""
        return {"zxid": self.applied_zxid, "name": self.name,
                "epoch": self.epoch}

    def _adopt_leader(self, leader: str, epoch: int) -> None:
        if epoch < self.epoch:
            return
        was_leader = self.is_leader
        crossed_reign = epoch > self.epoch
        if crossed_reign:
            # Proposals and buffered commits earned under an older
            # reign are orphans; applying them after the new leader
            # reuses their zxids would diverge.  The forced sync below
            # (and the beats' committed frontier) re-learns anything
            # the new reign actually kept.
            self._pending.clear()
            self._commit_buffer.clear()
        self.epoch = epoch
        self.leader_name = leader
        self.last_beat = self.sim.now
        if leader != self.name:
            self.role = "follower"
            if was_leader:
                self.sim.process(self._follower_watchdog(),
                                 name=f"{self.name}-watchdog")
            self.sim.process(self._sync_from(leader, force=crossed_reign),
                             name=f"{self.name}-sync")

    # ======================================================================
    # Snapshot sync
    # ======================================================================
    def _h_sync(self, src: str, args: Any):
        """Client ``sync``: wait until this member has applied at least
        the leader's current zxid — read-your-writes for reads served by
        a lagging follower (the real ZooKeeper sync semantics)."""
        if self.is_leader:
            return {"zxid": self.applied_zxid}
        result = self.sim.event()
        call = self.rpc.call_async(self.leader_name or "", "zk.sync", {})

        def leader_answered(ev):
            if not ev.ok:
                if not result.triggered:
                    result.fail(RpcRejected("no-leader"))
                return
            target = ev.value["zxid"]

            def wait():
                deadline = self.sim.now + self.config.proposal_timeout
                while self.applied_zxid < target:
                    if self.sim.now >= deadline:
                        # Fall back to an explicit snapshot sync.
                        yield from self._sync_from(self.leader_name)
                        break
                    yield self.sim.timeout(0.01)
                if not result.triggered:
                    result.succeed({"zxid": self.applied_zxid})

            self.sim.process(wait(), name=f"{self.name}-sync-wait")

        call.callbacks.append(leader_answered)
        return result

    def _h_sync_req(self, src: str, args: Any):
        """Leader: ship a full snapshot to a lagging member."""
        if not self.is_leader:
            raise RpcRejected("not-leader")
        return {"tree": self.tree.dump(),
                "sessions": self.sessions.dump(),
                "zxid": self.applied_zxid,
                "epoch": self.epoch}

    def _sync_from(self, leader: Optional[str], force: bool = False):
        """Pull and install the leader's snapshot.

        ``force`` loads the snapshot even when its zxid is *not* ahead
        of ours: crossing into a new reign means equal-or-lower zxids
        can name different operations, so state earned under the old
        epoch must be replaced, not kept.  The same applies whenever
        the answering leader's epoch is newer than ours.
        """
        if leader is None or leader == self.name:
            return
        try:
            snap = yield from self.rpc.call(leader, "zk.sync_req", {},
                                            timeout=self.config.proposal_timeout)
        except (RpcTimeout, RpcRejected):
            return
        snap_epoch = snap.get("epoch", self.epoch)
        if snap_epoch < self.epoch:
            return  # a deposed leader answered; its snapshot is stale
        # The answering leader's zxid is the authoritative committed
        # frontier; a beat from a deposed leader may have promised more.
        self._heal_target = min(self._heal_target, snap["zxid"])
        if snap_epoch > self.epoch:
            self.epoch = snap_epoch
            self.leader_name = leader
            self._pending.clear()
            self._commit_buffer.clear()
            force = True
        if force or snap["zxid"] > self.applied_zxid:
            self.tree = ZnodeTree.load(snap["tree"])
            self.sessions.load(snap["sessions"], self.sim.now)
            self.applied_zxid = snap["zxid"]
            self._pending = {z: op for z, op in self._pending.items()
                             if z > snap["zxid"]}
            self._commit_buffer = {z: op for z, op in self._commit_buffer.items()
                                   if z > snap["zxid"]}

    # ======================================================================
    # Notifications (beats, commits)
    # ======================================================================
    def _on_notify(self, src: str, body: Any) -> None:
        kind = body.get("zk")
        if kind == "beat":
            if body["epoch"] >= self.epoch:
                self._adopt_leader_soft(body["leader"], body["epoch"])
                self.last_beat = self.sim.now
                committed = body.get("committed", 0)
                if committed > self.applied_zxid and not self.is_leader:
                    self._heal_target = max(self._heal_target, committed)
                    self._start_gap_heal()
        elif kind == "commit":
            self._on_commit(body["zxid"], body.get("op"), body["epoch"], src)
        elif kind == "new_leader":
            self._adopt_leader(body["leader"], body["epoch"])

    def _adopt_leader_soft(self, leader: str, epoch: int) -> None:
        """Adopt leadership info from a beat without forcing a resync."""
        if epoch > self.epoch or self.leader_name is None:
            self._adopt_leader(leader, epoch)
        elif epoch == self.epoch and leader == self.leader_name:
            pass  # steady state
