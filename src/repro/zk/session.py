"""Replicated session table for the ZooKeeper ensemble.

Sessions are what make ephemeral znodes work: a client owns a session,
keeps it alive with pings, and when the leader stops hearing pings for
longer than the session timeout it commits a ``session_close``
transaction that removes the session's ephemerals (this is how a dead
Sedna real node disappears from ``/sedna/real_nodes``, §III.D).

The table itself (ids, timeouts) is replicated through the ordered
transaction stream so a newly elected leader knows every live session;
the *liveness clock* (last-ping times) is leader-local soft state and is
reset with a grace period after failover, like real ZooKeeper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Session", "SessionTable"]


@dataclass
class Session:
    """One client session."""

    session_id: int
    timeout: float
    last_ping: float = 0.0  # leader-local soft state


class SessionTable:
    """Sessions keyed by id, with expiry scanning."""

    def __init__(self):
        self.sessions: dict[int, Session] = {}

    def open(self, session_id: int, timeout: float, now: float) -> Session:
        """Register a session (replicated op apply path)."""
        sess = Session(session_id, timeout, last_ping=now)
        self.sessions[session_id] = sess
        return sess

    def close(self, session_id: int) -> bool:
        """Drop a session; True when it existed."""
        return self.sessions.pop(session_id, None) is not None

    def ping(self, session_id: int, now: float) -> bool:
        """Record a ping; False when the session is unknown (expired)."""
        sess = self.sessions.get(session_id)
        if sess is None:
            return False
        sess.last_ping = now
        return True

    def expired(self, now: float) -> list[int]:
        """Session ids whose timeout has elapsed since the last ping."""
        return [sid for sid, sess in self.sessions.items()
                if now - sess.last_ping > sess.timeout]

    def reset_clocks(self, now: float) -> None:
        """Grace period after leader failover: forgive all sessions."""
        for sess in self.sessions.values():
            sess.last_ping = now

    def __contains__(self, session_id: int) -> bool:
        return session_id in self.sessions

    def __len__(self) -> int:
        return len(self.sessions)

    def dump(self) -> dict:
        """Serializable state for follower sync."""
        return {sid: sess.timeout for sid, sess in self.sessions.items()}

    def load(self, blob: dict, now: float) -> None:
        """Rebuild from :meth:`dump` output."""
        self.sessions = {int(sid): Session(int(sid), timeout, last_ping=now)
                         for sid, timeout in blob.items()}
