"""Ensemble assembly: boot N ZooKeeper members on the simulated network.

The paper uses a "ZooKeeper sub-cluster" — a small subset of the data
center (3 of the 9 experiment servers) dedicated to coordination
(§III.A).  :class:`ZkEnsemble` wires those members together, seeds the
initial leader, and offers crash/restart handles for failover tests.
"""

from __future__ import annotations

from typing import Optional

from ..net.simulator import Simulator
from ..net.transport import Network
from .client import ZkClient
from .server import ZkConfig, ZkServer

__all__ = ["ZkEnsemble"]


class ZkEnsemble:
    """A running ensemble of :class:`~repro.zk.server.ZkServer`.

    Parameters
    ----------
    sim, network:
        Simulation substrate.
    size:
        Member count (odd; the paper's deployment uses 3).
    prefix:
        Endpoint name prefix; members are ``{prefix}0 .. {prefix}{n-1}``.
    config:
        Shared timing configuration.
    """

    def __init__(self, sim: Simulator, network: Network, size: int = 3,
                 prefix: str = "zk", config: Optional[ZkConfig] = None,
                 durable: bool = False):
        if size < 1:
            raise ValueError("ensemble needs at least one member")
        self.sim = sim
        self.network = network
        self.config = config if config is not None else ZkConfig()
        self.names = [f"{prefix}{i}" for i in range(size)]
        self.disks = None
        if durable:
            from ..persistence.disk import SimDisk
            self.disks = {name: SimDisk() for name in self.names}
        self.servers = [
            ZkServer(sim, network, name, self.names, self.config,
                     disk=self.disks[name] if self.disks else None)
            for name in self.names]

    def start(self) -> None:
        """Boot all members; member 0 seeds leadership."""
        for i, server in enumerate(self.servers):
            server.start(as_leader=(i == 0))
        if len(self.servers) > 1:
            leader = self.servers[0]
            for follower in self.servers[1:]:
                follower._adopt_leader(leader.name, leader.epoch)

    def leader(self) -> Optional[ZkServer]:
        """The current leader among running members, if any."""
        for server in self.servers:
            if server.running and server.is_leader:
                return server
        return None

    def server(self, name: str) -> ZkServer:
        """Member by endpoint name."""
        for server in self.servers:
            if server.name == name:
                return server
        raise KeyError(name)

    def crash(self, name: str) -> None:
        """Crash one member."""
        self.server(name).stop()

    def restart(self, name: str) -> None:
        """Restart a crashed member (it rejoins and syncs)."""
        self.server(name).restart()

    def crash_all(self) -> None:
        """Power loss: every member down at once."""
        for server in self.servers:
            server.stop()

    def cold_restart_all(self) -> None:
        """Restart the whole ensemble from its transaction logs.

        The member that recovered the highest zxid seeds leadership so
        no committed transaction is lost to a stale leader.
        """
        best = max(self.servers,
                   key=lambda s: (s.recover_from_disk(), s.name))
        for server in self.servers:
            server.cold_restart(as_leader=(server is best))
        for server in self.servers:
            if server is not best:
                server._adopt_leader(best.name, best.epoch)

    def client(self, name: str) -> ZkClient:
        """A new client wired to this ensemble."""
        return ZkClient(self.sim, self.network, name, self.names, self.config)

    def stats(self) -> dict:
        """Aggregated ensemble counters (reads, writes, watch events)."""
        return {
            "reads_served": sum(s.reads_served for s in self.servers),
            "writes_led": sum(s.writes_led for s in self.servers),
            "watch_events_sent": sum(s.watch_events_sent for s in self.servers),
            "leader": (self.leader().name if self.leader() else None),
        }
