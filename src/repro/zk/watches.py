"""One-shot watch registry, per ensemble member.

ZooKeeper watches are registered at the server a client is connected to
and fire *once* when that server applies a transaction touching the
watched path.  Sedna deliberately avoids them for the vnode mapping
("any change will result in an uncontrollable network storm", §III.E) —
we implement them anyway because (a) the substrate should be complete
and (b) the ZK-bottleneck ablation bench demonstrates the storm the
paper worries about.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["WatchEvent", "WatchRegistry",
           "EVENT_CREATED", "EVENT_DELETED", "EVENT_CHANGED",
           "EVENT_CHILD"]

EVENT_CREATED = "created"
EVENT_DELETED = "deleted"
EVENT_CHANGED = "changed"
EVENT_CHILD = "child"


class WatchEvent(dict):
    """A fired watch: ``{"type": ..., "path": ...}`` (dict for the wire)."""

    def __init__(self, event_type: str, path: str):
        super().__init__(type=event_type, path=path)


class WatchRegistry:
    """Tracks data and child watches per (path, client)."""

    def __init__(self):
        # path -> set of client endpoint names
        self.data_watches: dict[str, set[str]] = {}
        self.child_watches: dict[str, set[str]] = {}

    def add_data(self, path: str, client: str) -> None:
        """Watch data changes / creation / deletion of ``path``."""
        self.data_watches.setdefault(path, set()).add(client)

    def add_child(self, path: str, client: str) -> None:
        """Watch the child list of ``path``."""
        self.child_watches.setdefault(path, set()).add(client)

    def drop_client(self, client: str) -> None:
        """Remove every watch owned by a disconnected client."""
        for table in (self.data_watches, self.child_watches):
            for path in list(table):
                table[path].discard(client)
                if not table[path]:
                    del table[path]

    def _take(self, table: dict[str, set[str]], path: str) -> set[str]:
        return table.pop(path, set())

    def fire_data(self, path: str, event_type: str) -> list[tuple[str, WatchEvent]]:
        """Consume data watches on ``path``; returns (client, event) pairs."""
        return [(client, WatchEvent(event_type, path))
                for client in sorted(self._take(self.data_watches, path))]

    def fire_child(self, path: str) -> list[tuple[str, WatchEvent]]:
        """Consume child watches on ``path``."""
        return [(client, WatchEvent(EVENT_CHILD, path))
                for client in sorted(self._take(self.child_watches, path))]

    def events_for_txn(self, op_type: str, path: str,
                       parent: str) -> list[tuple[str, WatchEvent]]:
        """All watch firings a committed transaction causes."""
        out: list[tuple[str, WatchEvent]] = []
        if op_type == "create":
            out += self.fire_data(path, EVENT_CREATED)
            out += self.fire_child(parent)
        elif op_type == "delete":
            out += self.fire_data(path, EVENT_DELETED)
            out += self.fire_child(parent)
        elif op_type == "set":
            out += self.fire_data(path, EVENT_CHANGED)
        return out

    def count(self) -> int:
        """Total outstanding watch registrations (both kinds)."""
        return (sum(len(s) for s in self.data_watches.values())
                + sum(len(s) for s in self.child_watches.values()))
