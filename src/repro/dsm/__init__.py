"""Distributed shared memory helpers over the Sedna store (§II.B)."""

from .region import SharedCounter, SharedSet, SharedValue

__all__ = ["SharedCounter", "SharedSet", "SharedValue"]
