"""Distributed shared memory over the Sedna KV store (§II.B).

"Besides, Sedna provides distributed shared memory to help users write
realtime applications or streaming processing applications."  The paper
does not detail this API, so we build the natural one on top of the
primitives it *does* define — and the interesting part is that
``write_all``'s per-source value lists give us conflict-free
replicated data types for free:

* :class:`SharedValue` — a last-write-wins register (``write_latest``).
* :class:`SharedCounter` — a grow-only/PN counter: each writer owns its
  element of the value list (its local tally); the merged value is the
  sum.  Concurrent increments from different processes never conflict,
  exactly because ``write_all`` only compares timestamps *per source*
  (§III.F).
* :class:`SharedSet` — an observed-add set: each writer contributes its
  own element set; the merged set is the union.

All operations are generator helpers (``yield from``) like the rest of
the client API.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.types import DEFAULT_DATASET

__all__ = ["SharedValue", "SharedCounter", "SharedSet"]

_TABLE = "__dsm__"


class SharedValue:
    """A named last-write-wins register shared by all clients.

    ::

        reg = SharedValue(client, "config/mode")
        yield from reg.set("fast")
        mode = yield from reg.get()
    """

    def __init__(self, client, name: str, dataset: str = DEFAULT_DATASET):
        self.client = client
        self.name = name
        self.dataset = dataset

    def set(self, value: Any):
        """Replace the register's value (LWW across writers)."""
        status = yield from self.client.write_latest(
            self.name, value, table=_TABLE, dataset=self.dataset)
        return status

    def get(self, default: Any = None):
        """The freshest value, or ``default`` when never set."""
        value = yield from self.client.read_latest(
            self.name, table=_TABLE, dataset=self.dataset)
        return default if value is None else value


class SharedCounter:
    """A distributed counter safe under concurrent writers.

    Implemented as a PN-counter over ``write_all``: this client's
    element of the value list holds ``(increments, decrements)`` — its
    own contribution only — so no two writers ever race.  The read path
    sums all elements.
    """

    def __init__(self, client, name: str, dataset: str = DEFAULT_DATASET):
        self.client = client
        self.name = name
        self.dataset = dataset
        self._local = [0, 0]  # [increments, decrements] by this client

    def _flush(self):
        status = yield from self.client.write_all(
            self.name, tuple(self._local), table=_TABLE,
            dataset=self.dataset)
        return status

    def increment(self, amount: int = 1):
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("use decrement for negative deltas")
        self._local[0] += amount
        result = yield from self._flush()
        return result

    def decrement(self, amount: int = 1):
        """Subtract ``amount`` (>= 0) from the counter."""
        if amount < 0:
            raise ValueError("decrement takes a non-negative amount")
        self._local[1] += amount
        result = yield from self._flush()
        return result

    def value(self):
        """The merged counter value across every writer."""
        elements = yield from self.client.read_all(
            self.name, table=_TABLE, dataset=self.dataset)
        total = 0
        for el in elements:
            inc, dec = el.value
            total += inc - dec
        return total


class SharedSet:
    """A distributed add-only set (union across writers).

    Each writer's value-list element carries the members *it* added;
    readers see the union.  Removal would need tombstones — the paper's
    realtime use cases (seen-ids, member lists) are add-dominated, so
    we keep the CRDT simple and document the limit.
    """

    def __init__(self, client, name: str, dataset: str = DEFAULT_DATASET):
        self.client = client
        self.name = name
        self.dataset = dataset
        self._local: list = []

    def add(self, member):
        """Insert ``member`` (idempotent for this writer)."""
        if member not in self._local:
            self._local.append(member)
        status = yield from self.client.write_all(
            self.name, list(self._local), table=_TABLE, dataset=self.dataset)
        return status

    def add_many(self, members: Iterable):
        """Insert several members with a single replicated write."""
        for member in members:
            if member not in self._local:
                self._local.append(member)
        status = yield from self.client.write_all(
            self.name, list(self._local), table=_TABLE, dataset=self.dataset)
        return status

    def members(self):
        """The union of every writer's contributions."""
        elements = yield from self.client.read_all(
            self.name, table=_TABLE, dataset=self.dataset)
        out: list = []
        seen = set()
        for el in sorted(elements, key=lambda e: e.source):
            for member in el.value:
                marker = repr(member)
                if marker not in seen:
                    seen.add(marker)
                    out.append(member)
        return out

    def contains(self, member):
        """Membership test against the merged set."""
        members = yield from self.members()
        return member in members
