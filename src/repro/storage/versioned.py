"""Sedna's local storage extensions over MemStore.

The paper stores every datum with a timestamp and keeps, for
``write_all`` keys, a *value list* with one element per source server
(§III.F).  Each row additionally carries two extra columns, **Dirty**
and **Monitors** (§IV.C, Fig. 5): Dirty is set automatically on every
write; Monitors lists the trigger monitors registered on the row.
Scanner threads sweep the Dirty flags and feed changed rows to the
trigger runtime.

:class:`VersionedStore` provides exactly those semantics:

* ``write_latest(key, value, ts, source)`` — overwrite if the request's
  timestamp is newer than the stored one, replying ``ok``; otherwise
  reply ``outdated`` (lock-free last-write-wins).
* ``write_all(key, value, ts, source)`` — compare only against the
  element *from the same source* in the value list; update that element
  if newer.
* ``read_latest`` / ``read_all`` — freshest element vs. the whole list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["ValueElement", "Row", "WriteOutcome", "VersionedStore"]


class WriteOutcome:
    """Reply vocabulary of the write APIs (§III.F)."""

    OK = "ok"
    OUTDATED = "outdated"
    FAILURE = "failure"


@dataclass(frozen=True)
class ValueElement:
    """One element of a value list: (source server, timestamp, value)."""

    source: str
    timestamp: float
    value: Any


@dataclass
class Row:
    """A stored row: value list plus the Dirty/Monitors columns."""

    elements: list[ValueElement] = field(default_factory=list)
    dirty: bool = False
    dirty_seq: int = 0
    monitors: set[str] = field(default_factory=set)

    def latest(self) -> Optional[ValueElement]:
        """The element with the newest timestamp (ties: lexicographically
        greatest source, so replicas resolve ties identically)."""
        if not self.elements:
            return None
        return max(self.elements, key=lambda e: (e.timestamp, e.source))

    def element_from(self, source: str) -> Optional[ValueElement]:
        """The element written by ``source``, if any."""
        for el in self.elements:
            if el.source == source:
                return el
        return None


class VersionedStore:
    """Timestamped multi-version row store with dirty tracking.

    Rows are held in a plain dict keyed by the (string) full key; the
    memory accounting of the byte-level engine is exercised separately
    by :class:`~repro.storage.memstore.MemStore` — Sedna's node embeds
    both: MemStore for raw cache traffic, VersionedStore for the
    replicated, trigger-visible dataset.

    Parameters
    ----------
    clock:
        Simulated-time source used for bookkeeping (not for versioning
        — versions come from client-supplied timestamps, as the paper
        specifies writes carry their own timestamps).
    metrics / node:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` plus the
        owning node's name; when given, op counts and rough byte sizes
        are exported as ``store.*`` series.  Without a registry the
        handles are shared no-ops.
    """

    def __init__(self, clock: Callable[[], float] = None,
                 metrics=None, node: str = ""):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.rows: dict[str, Row] = {}
        self._dirty_seq = 0
        self._dirty_keys: dict[str, int] = {}
        # Observers called as fn(key, old_latest, new_latest) on change;
        # the trigger scanner hooks here *in addition to* polling the
        # Dirty column, mirroring the paper's scan threads without
        # forcing benchmarks to pay a scan on every write.
        self.writes_ok = 0
        self.writes_outdated = 0
        self.reads = 0
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_writes_ok = metrics.counter("store.writes_ok", node=node)
        self._m_writes_outdated = metrics.counter(
            "store.writes_outdated", node=node)
        self._m_reads = metrics.counter("store.reads", node=node)
        self._m_bytes_written = metrics.counter(
            "store.bytes_written", node=node)
        self._m_bytes_read = metrics.counter("store.bytes_read", node=node)

    @staticmethod
    def _value_size(value: Any) -> int:
        """Rough payload size for the byte-volume series."""
        return len(value) if isinstance(value, (str, bytes)) else 8

    # -- write paths -------------------------------------------------------
    def _mark_dirty(self, key: str, row: Row) -> None:
        self._dirty_seq += 1
        row.dirty = True
        row.dirty_seq = self._dirty_seq
        self._dirty_keys[key] = self._dirty_seq

    def write_latest(self, key: str, value: Any, timestamp: float,
                     source: str) -> str:
        """Overwrite the whole row iff ``timestamp`` is newest.

        Returns ``"ok"`` or ``"outdated"`` (§III.F: "writes with newer
        timestamp will successfully overwrite data with older
        timestamp").
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        current = row.latest()
        if current is not None and (timestamp, source) <= (
                current.timestamp, current.source):
            self.writes_outdated += 1
            self._m_writes_outdated.inc()
            return WriteOutcome.OUTDATED
        row.elements = [ValueElement(source, timestamp, value)]
        self._mark_dirty(key, row)
        self.writes_ok += 1
        self._m_writes_ok.inc()
        self._m_bytes_written.inc(self._value_size(value))
        return WriteOutcome.OK

    def write_all(self, key: str, value: Any, timestamp: float,
                  source: str) -> str:
        """Update only this source's element iff ``timestamp`` is newer.

        §III.F: "it will only compare the request's timestamp with the
        element that came from the same source server in value list."
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        existing = row.element_from(source)
        if existing is not None and timestamp <= existing.timestamp:
            self.writes_outdated += 1
            self._m_writes_outdated.inc()
            return WriteOutcome.OUTDATED
        if existing is not None:
            row.elements.remove(existing)
        row.elements.append(ValueElement(source, timestamp, value))
        self._mark_dirty(key, row)
        self.writes_ok += 1
        self._m_writes_ok.inc()
        self._m_bytes_written.inc(self._value_size(value))
        return WriteOutcome.OK

    def write_multi(self, entries) -> dict[str, str]:
        """Apply a batch of writes in order; one outcome per key.

        ``entries`` yields ``(key, value, timestamp, source, mode)``
        tuples where ``mode`` is ``"latest"`` or ``"all"``.  The store
        side of the batched replication round (``replica.mwrite``):
        the whole group is applied under one handler dispatch.  With
        duplicate keys the last entry's outcome wins.
        """
        out: dict[str, str] = {}
        for key, value, timestamp, source, mode in entries:
            if mode == "latest":
                out[key] = self.write_latest(key, value, timestamp, source)
            else:
                out[key] = self.write_all(key, value, timestamp, source)
        return out

    def delete(self, key: str) -> bool:
        """Remove a row entirely; True when it existed."""
        existed = self.rows.pop(key, None) is not None
        self._dirty_keys.pop(key, None)
        return existed

    # -- read paths -----------------------------------------------------------
    def read_latest(self, key: str) -> Optional[ValueElement]:
        """The freshest element regardless of which node wrote it."""
        self.reads += 1
        self._m_reads.inc()
        row = self.rows.get(key)
        latest = row.latest() if row is not None else None
        if latest is not None:
            self._m_bytes_read.inc(self._value_size(latest.value))
        return latest

    def read_all(self, key: str) -> list[ValueElement]:
        """Every element of the value list (empty when absent)."""
        self.reads += 1
        self._m_reads.inc()
        row = self.rows.get(key)
        elements = list(row.elements) if row is not None else []
        for el in elements:
            self._m_bytes_read.inc(self._value_size(el.value))
        return elements

    def read_multi(self, keys) -> dict[str, list[ValueElement]]:
        """Batch :meth:`read_all`; absent keys map to empty lists.

        The store side of the batched quorum read
        (``replica.mread``): one dict per group instead of one lookup
        round per key.
        """
        return {key: self.read_all(key) for key in keys}

    def row(self, key: str) -> Optional[Row]:
        """The raw row (monitors/dirty included); None when absent."""
        return self.rows.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def keys(self) -> Iterator[str]:
        """All stored keys."""
        return iter(self.rows)

    # -- dirty / monitor support (trigger substrate) -----------------------
    def register_monitor(self, key: str, monitor_id: str) -> None:
        """Add ``monitor_id`` to the row's Monitors column.

        Registering on a missing key creates an empty row, so triggers
        can watch keys that do not exist yet (the realtime-search use
        case watches the crawl output table before the first tweet).
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        row.monitors.add(monitor_id)

    def unregister_monitor(self, key: str, monitor_id: str) -> None:
        """Remove a monitor registration (no-op when absent)."""
        row = self.rows.get(key)
        if row is not None:
            row.monitors.discard(monitor_id)

    def drain_dirty(self, limit: int = 0) -> list[tuple[str, Row]]:
        """Take up to ``limit`` dirty rows (0 = all), clearing their flags.

        Rows are returned in dirty order (oldest first), which is what
        the sequential scanner threads of §IV.C observe.
        """
        keys = sorted(self._dirty_keys, key=self._dirty_keys.__getitem__)
        if limit > 0:
            keys = keys[:limit]
        out: list[tuple[str, Row]] = []
        for key in keys:
            del self._dirty_keys[key]
            row = self.rows.get(key)
            if row is None:
                continue
            row.dirty = False
            out.append((key, row))
        return out

    @property
    def dirty_count(self) -> int:
        """Rows currently flagged dirty."""
        return len(self._dirty_keys)

    # -- replication support -------------------------------------------------
    def snapshot_range(self, predicate: Callable[[str], bool]) -> dict[str, list[ValueElement]]:
        """Dump rows whose key satisfies ``predicate``.

        Used by replica re-duplication (§III.C) and rebalancing to copy
        a virtual node's contents to a new owner.
        """
        return {key: list(row.elements)
                for key, row in self.rows.items() if predicate(key)}

    def merge_elements(self, key: str, elements: list[ValueElement]) -> None:
        """Merge foreign elements into a row (idempotent, newest wins).

        The receiving side of re-duplication and anti-entropy: for each
        source keep the newer of (local, incoming).
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        changed = False
        for el in elements:
            mine = row.element_from(el.source)
            if mine is None or el.timestamp > mine.timestamp:
                if mine is not None:
                    row.elements.remove(mine)
                row.elements.append(el)
                changed = True
        if changed:
            self._mark_dirty(key, row)
