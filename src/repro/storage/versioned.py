"""Sedna's local storage extensions over MemStore.

The paper stores every datum with a timestamp and keeps, for
``write_all`` keys, a *value list* with one element per source server
(§III.F).  Each row additionally carries two extra columns, **Dirty**
and **Monitors** (§IV.C, Fig. 5): Dirty is set automatically on every
write; Monitors lists the trigger monitors registered on the row.
Scanner threads sweep the Dirty flags and feed changed rows to the
trigger runtime.

:class:`VersionedStore` provides exactly those semantics:

* ``write_latest(key, value, ts, source)`` — overwrite if the request's
  timestamp is newer than the stored one, replying ``ok``; otherwise
  reply ``outdated`` (lock-free last-write-wins).
* ``write_all(key, value, ts, source)`` — compare only against the
  element *from the same source* in the value list; update that element
  if newer.
* ``read_latest`` / ``read_all`` — freshest element vs. the whole list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Iterable, Iterator,
                    Optional)

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

__all__ = ["ValueElement", "Row", "WriteOutcome", "VersionedStore",
           "element_order", "DvvSibling", "DvvRow", "ctx_covers",
           "wire_dvv_row", "unwire_dvv_row", "wire_context",
           "unwire_context"]


def element_order(el: "ValueElement") -> tuple[float, str]:
    """Total order over value-list elements: ``(timestamp, source)``.

    Every version comparison in the system — ``write_latest``,
    ``Row.latest``, merges, read repair — must use this same key, or
    equal-timestamp writes resolve differently on different replicas.
    """
    return (el.timestamp, el.source)


class WriteOutcome:
    """Reply vocabulary of the write APIs (§III.F)."""

    OK = "ok"
    OUTDATED = "outdated"
    FAILURE = "failure"


@dataclass(frozen=True)
class ValueElement:
    """One element of a value list: (source server, timestamp, value)."""

    source: str
    timestamp: float
    value: Any


@dataclass
class Row:
    """A stored row: value list plus the Dirty/Monitors columns.

    ``lww`` records the row's write discipline: True once the row has
    been written through ``write_latest`` (it then holds at most one
    element), False for ``write_all`` value lists, None when the row
    has only ever been populated by merges and the mode is unknown.
    Merges into an LWW row prune superseded sources so re-duplication
    and anti-entropy cannot re-inflate a collapsed row.
    """

    elements: list[ValueElement] = field(default_factory=list)
    dirty: bool = False
    dirty_seq: int = 0
    monitors: set[str] = field(default_factory=set)
    lww: Optional[bool] = None

    def latest(self) -> Optional[ValueElement]:
        """The element with the newest timestamp (ties: lexicographically
        greatest source, so replicas resolve ties identically)."""
        if not self.elements:
            return None
        return max(self.elements, key=element_order)

    def element_from(self, source: str) -> Optional[ValueElement]:
        """The element written by ``source``, if any."""
        for el in self.elements:
            if el.source == source:
                return el
        return None


@dataclass(frozen=True)
class DvvSibling:
    """One concurrent version of a causal-mode row.

    ``(replica, counter)`` is the *dot* — the globally unique event id
    minted by the coordinating replica; ``source``/``timestamp``/
    ``value`` carry the client write itself.  Metadata is bounded: dot
    ids are server names, so a row's version vector never grows beyond
    the cluster size (the Dotted Version Vectors guarantee).
    """

    replica: str
    counter: int
    source: str
    timestamp: float
    value: Any

    @property
    def dot(self) -> tuple[str, int]:
        return (self.replica, self.counter)


def ctx_covers(ctx: dict[str, int], dot: tuple[str, int]) -> bool:
    """True when causal context ``ctx`` has seen event ``dot``."""
    return ctx.get(dot[0], 0) >= dot[1]


def _sibling_order(s: DvvSibling) -> tuple[float, str, str, int]:
    """Deterministic storage order: oldest first, dot-unique."""
    return (s.timestamp, s.source, s.replica, s.counter)


class DvvRow:
    """A causal-mode row: version vector plus concurrent siblings.

    The compact server-side form of the Dotted Version Vectors paper
    (PAPERS.md, Preguiça/Baquero/Almeida): one version vector ``vv``
    summarising every event this replica has *seen*, and a sibling list
    holding the events not yet causally superseded.  Invariant: every
    sibling's dot is covered by ``vv``.

    ``update`` applies a client write with its causal context at the
    dot-minting replica; ``merge`` joins two replicas' rows such that a
    sibling survives iff it is present on both sides or present on one
    side and *not yet seen* (dot above the vv entry) by the other.
    Both are deterministic, and ``merge`` is associative, commutative
    and idempotent, so anti-entropy and read repair can apply rows in
    any order.
    """

    __slots__ = ("vv", "siblings")

    def __init__(self, vv: Optional[dict[str, int]] = None,
                 siblings: Optional[list[DvvSibling]] = None) -> None:
        self.vv: dict[str, int] = dict(vv or {})
        self.siblings: list[DvvSibling] = sorted(siblings or [],
                                                 key=_sibling_order)

    def context(self) -> dict[str, int]:
        """The causal context handed to clients on read."""
        return dict(self.vv)

    def values(self) -> list[Any]:
        """Current sibling values, oldest first."""
        return [s.value for s in self.siblings]

    def shape(self) -> tuple:
        """Canonical comparable form: (vv items, sibling dots)."""
        return (tuple(sorted(self.vv.items())),
                tuple(sorted(s.dot for s in self.siblings)))

    def _cap(self, cap: Optional[int]) -> int:
        """Drop the oldest siblings beyond ``cap``; returns count pruned.

        Merge-safe: pruned dots stay covered by ``vv``, so a pruned
        sibling can never resurrect through a later merge, and replicas
        applying the same cap to the same merged set prune identically.
        """
        if cap is None or cap <= 0 or len(self.siblings) <= cap:
            return 0
        pruned = len(self.siblings) - cap
        self.siblings = self.siblings[pruned:]
        return pruned

    def update(self, ctx: dict[str, int], source: str, timestamp: float,
               value: Any, replica_id: str,
               cap: Optional[int] = None) -> tuple[tuple[str, int], int]:
        """Apply a client write at the dot-minting replica.

        Siblings whose dot the client's context covers are causally
        superseded and discarded; the write itself gets a fresh dot
        ``(replica_id, counter)``.  Returns ``(dot, siblings_pruned)``.
        """
        counter = self.vv.get(replica_id, 0) + 1
        for rep, cnt in ctx.items():
            if cnt > self.vv.get(rep, 0):
                self.vv[rep] = cnt
        self.vv[replica_id] = counter
        self.siblings = [s for s in self.siblings
                         if not ctx_covers(ctx, s.dot)]
        self.siblings.append(
            DvvSibling(replica_id, counter, source, timestamp, value))
        self.siblings.sort(key=_sibling_order)
        pruned = self._cap(cap)
        return (replica_id, counter), pruned

    def merge(self, other: "DvvRow",
              cap: Optional[int] = None) -> tuple[bool, int]:
        """Join another replica's row into this one.

        A sibling survives iff both sides hold it, or one side holds it
        and the other has not seen its dot.  Returns ``(changed,
        siblings_pruned)``.
        """
        before = self.shape()
        mine = {s.dot: s for s in self.siblings}
        theirs = {s.dot: s for s in other.siblings}
        keep: dict[tuple[str, int], DvvSibling] = {}
        for dot, sib in mine.items():
            if dot in theirs or dot[1] > other.vv.get(dot[0], 0):
                keep[dot] = sib
        for dot, sib in theirs.items():
            if dot in mine or dot[1] > self.vv.get(dot[0], 0):
                keep[dot] = sib
        for rep, cnt in other.vv.items():
            if cnt > self.vv.get(rep, 0):
                self.vv[rep] = cnt
        self.siblings = sorted(keep.values(), key=_sibling_order)
        pruned = self._cap(cap)
        return self.shape() != before, pruned


def wire_context(ctx: dict[str, int]) -> list[list]:
    """Causal context in wire form: sorted ``[replica, counter]`` pairs."""
    return [[rep, cnt] for rep, cnt in sorted(ctx.items())]


def unwire_context(blob: Optional[Iterable[Any]]) -> dict[str, int]:
    """Inverse of :func:`wire_context` (tolerates tuples)."""
    return {rep: cnt for rep, cnt in (blob or [])}


def wire_dvv_row(row: DvvRow) -> dict:
    """A causal row in wire form (deterministically ordered)."""
    return {"vv": wire_context(row.vv),
            "siblings": [[s.replica, s.counter, s.source, s.timestamp,
                          s.value] for s in row.siblings]}


def unwire_dvv_row(blob: dict) -> DvvRow:
    """Inverse of :func:`wire_dvv_row`."""
    return DvvRow(unwire_context(blob.get("vv")),
                  [DvvSibling(rep, cnt, src, ts, val)
                   for rep, cnt, src, ts, val in blob.get("siblings", [])])


class VersionedStore:
    """Timestamped multi-version row store with dirty tracking.

    Rows are held in a plain dict keyed by the (string) full key; the
    memory accounting of the byte-level engine is exercised separately
    by :class:`~repro.storage.memstore.MemStore` — Sedna's node embeds
    both: MemStore for raw cache traffic, VersionedStore for the
    replicated, trigger-visible dataset.

    Parameters
    ----------
    clock:
        Simulated-time source used for bookkeeping (not for versioning
        — versions come from client-supplied timestamps, as the paper
        specifies writes carry their own timestamps).
    metrics / node:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` plus the
        owning node's name; when given, op counts and rough byte sizes
        are exported as ``store.*`` series.  Without a registry the
        handles are shared no-ops.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 node: str = "", dvv_sibling_cap: int = 16) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.rows: dict[str, Row] = {}
        # Causal-mode (DVV) rows live beside the timestamped rows; a
        # key is one or the other, never both, by API discipline.
        self.dvv_rows: dict[str, DvvRow] = {}
        self.dvv_sibling_cap = dvv_sibling_cap
        self.dvv_context_misses = 0
        self.dvv_sibling_prunes = 0
        self._dirty_seq = 0
        self._dirty_keys: dict[str, int] = {}
        # Observers called as fn(key, old_latest, new_latest) on change;
        # the trigger scanner hooks here *in addition to* polling the
        # Dirty column, mirroring the paper's scan threads without
        # forcing benchmarks to pay a scan on every write.
        self.writes_ok = 0
        self.writes_outdated = 0
        self.reads = 0
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_writes_ok = metrics.counter("store.writes_ok", node=node)
        self._m_writes_outdated = metrics.counter(
            "store.writes_outdated", node=node)
        self._m_reads = metrics.counter("store.reads", node=node)
        self._m_bytes_written = metrics.counter(
            "store.bytes_written", node=node)
        self._m_bytes_read = metrics.counter("store.bytes_read", node=node)
        self._m_dvv_siblings = metrics.histogram(
            "dvv.siblings", node=node, buckets=(1, 2, 3, 5, 8, 13))
        self._m_dvv_ctx_miss = metrics.counter(
            "dvv.context_misses", node=node)
        self._m_dvv_prunes = metrics.counter(
            "dvv.sibling_prunes", node=node)

    @staticmethod
    def _value_size(value: Any) -> int:
        """Rough payload size for the byte-volume series."""
        return len(value) if isinstance(value, (str, bytes)) else 8

    # -- write paths -------------------------------------------------------
    def _mark_dirty(self, key: str, row: Row) -> None:
        self._dirty_seq += 1
        row.dirty = True
        row.dirty_seq = self._dirty_seq
        self._dirty_keys[key] = self._dirty_seq

    def write_latest(self, key: str, value: Any, timestamp: float,
                     source: str) -> str:
        """Overwrite the whole row iff ``timestamp`` is newest.

        Returns ``"ok"`` or ``"outdated"`` (§III.F: "writes with newer
        timestamp will successfully overwrite data with older
        timestamp").
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        row.lww = True
        current = row.latest()
        if current is not None and (timestamp, source) <= (
                current.timestamp, current.source):
            self.writes_outdated += 1
            self._m_writes_outdated.inc()
            return WriteOutcome.OUTDATED
        row.elements = [ValueElement(source, timestamp, value)]
        self._mark_dirty(key, row)
        self.writes_ok += 1
        self._m_writes_ok.inc()
        self._m_bytes_written.inc(self._value_size(value))
        return WriteOutcome.OK

    def write_all(self, key: str, value: Any, timestamp: float,
                  source: str) -> str:
        """Update only this source's element iff ``timestamp`` is newer.

        §III.F: "it will only compare the request's timestamp with the
        element that came from the same source server in value list."
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        row.lww = False
        existing = row.element_from(source)
        if existing is not None and timestamp <= existing.timestamp:
            self.writes_outdated += 1
            self._m_writes_outdated.inc()
            return WriteOutcome.OUTDATED
        if existing is not None:
            row.elements.remove(existing)
        row.elements.append(ValueElement(source, timestamp, value))
        self._mark_dirty(key, row)
        self.writes_ok += 1
        self._m_writes_ok.inc()
        self._m_bytes_written.inc(self._value_size(value))
        return WriteOutcome.OK

    def write_multi(
            self,
            entries: Iterable[tuple[str, Any, float, str, str]],
    ) -> dict[str, str]:
        """Apply a batch of writes in order; one outcome per key.

        ``entries`` yields ``(key, value, timestamp, source, mode)``
        tuples where ``mode`` is ``"latest"`` or ``"all"``.  The store
        side of the batched replication round (``replica.mwrite``):
        the whole group is applied under one handler dispatch.  With
        duplicate keys the last entry's outcome wins.
        """
        out: dict[str, str] = {}
        for key, value, timestamp, source, mode in entries:
            if mode == "latest":
                out[key] = self.write_latest(key, value, timestamp, source)
            else:
                out[key] = self.write_all(key, value, timestamp, source)
        return out

    def delete(self, key: str) -> bool:
        """Remove a row entirely; True when it existed."""
        existed = self.rows.pop(key, None) is not None
        existed = (self.dvv_rows.pop(key, None) is not None) or existed
        self._dirty_keys.pop(key, None)
        return existed

    # -- read paths -----------------------------------------------------------
    def read_latest(self, key: str) -> Optional[ValueElement]:
        """The freshest element regardless of which node wrote it."""
        self.reads += 1
        self._m_reads.inc()
        row = self.rows.get(key)
        latest = row.latest() if row is not None else None
        if latest is not None:
            self._m_bytes_read.inc(self._value_size(latest.value))
        return latest

    def read_all(self, key: str) -> list[ValueElement]:
        """Every element of the value list (empty when absent)."""
        self.reads += 1
        self._m_reads.inc()
        row = self.rows.get(key)
        elements = list(row.elements) if row is not None else []
        for el in elements:
            self._m_bytes_read.inc(self._value_size(el.value))
        return elements

    def read_multi(
            self, keys: Iterable[str]) -> dict[str, list[ValueElement]]:
        """Batch :meth:`read_all`; absent keys map to empty lists.

        The store side of the batched quorum read
        (``replica.mread``): one dict per group instead of one lookup
        round per key.
        """
        return {key: self.read_all(key) for key in keys}

    def row(self, key: str) -> Optional[Row]:
        """The raw row (monitors/dirty included); None when absent."""
        return self.rows.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def keys(self) -> Iterator[str]:
        """All stored keys."""
        return iter(self.rows)

    # -- dirty / monitor support (trigger substrate) -----------------------
    def register_monitor(self, key: str, monitor_id: str) -> None:
        """Add ``monitor_id`` to the row's Monitors column.

        Registering on a missing key creates an empty row, so triggers
        can watch keys that do not exist yet (the realtime-search use
        case watches the crawl output table before the first tweet).
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        row.monitors.add(monitor_id)

    def unregister_monitor(self, key: str, monitor_id: str) -> None:
        """Remove a monitor registration (no-op when absent)."""
        row = self.rows.get(key)
        if row is not None:
            row.monitors.discard(monitor_id)

    def drain_dirty(self, limit: int = 0) -> list[tuple[str, Row]]:
        """Take up to ``limit`` dirty rows (0 = all), clearing their flags.

        Rows are returned in dirty order (oldest first), which is what
        the sequential scanner threads of §IV.C observe.
        """
        keys = sorted(self._dirty_keys, key=self._dirty_keys.__getitem__)
        if limit > 0:
            keys = keys[:limit]
        out: list[tuple[str, Row]] = []
        for key in keys:
            del self._dirty_keys[key]
            row = self.rows.get(key)
            if row is None:
                continue
            row.dirty = False
            out.append((key, row))
        return out

    @property
    def dirty_count(self) -> int:
        """Rows currently flagged dirty."""
        return len(self._dirty_keys)

    # -- replication support -------------------------------------------------
    def snapshot_range(self, predicate: Callable[[str], bool]) -> dict[str, list[ValueElement]]:
        """Dump rows whose key satisfies ``predicate``.

        Used by replica re-duplication (§III.C) and rebalancing to copy
        a virtual node's contents to a new owner.
        """
        return {key: list(row.elements)
                for key, row in self.rows.items() if predicate(key)}

    def merge_elements(self, key: str, elements: list[ValueElement],
                       lww: Optional[bool] = None) -> None:
        """Merge foreign elements into a row (idempotent, newest wins).

        The receiving side of re-duplication and anti-entropy: for each
        source keep the newer of (local, incoming) under the full
        ``(timestamp, source)`` order — a bare timestamp comparison
        resolves equal-timestamp merges differently on different
        replicas.

        ``lww`` is the sender's knowledge of the row's write mode.  For
        LWW rows (``write_latest`` collapses the value list to a single
        element) the merge additionally prunes every element superseded
        by the row maximum; without that, merging per-source elements
        re-inflates collapsed rows, so replicas converge on reads yet
        diverge on digests and memory — perpetual anti-entropy churn.
        """
        row = self.rows.get(key)
        if row is None:
            row = Row()
            self.rows[key] = row
        if lww is not None:
            row.lww = lww
        changed = False
        for el in elements:
            mine = row.element_from(el.source)
            if mine is None or element_order(el) > element_order(mine):
                if mine is not None:
                    row.elements.remove(mine)
                row.elements.append(el)
                changed = True
        if row.lww and len(row.elements) > 1:
            top = max(row.elements, key=element_order)
            row.elements = [top]
            changed = True
        if changed:
            self._mark_dirty(key, row)

    # -- causal mode (DVV) -----------------------------------------------
    def causal_update(self, key: str, value: Any, timestamp: float,
                      source: str, ctx: dict[str, int],
                      replica_id: str) -> tuple[tuple[str, int], DvvRow]:
        """Apply a client's causal write at the dot-minting replica.

        Returns the freshly minted dot and the resulting row, which the
        coordinator replicates to the remaining replicas via
        :meth:`causal_merge`.  Causal rows bypass the Dirty/Monitors
        trigger substrate — triggers stay an LWW-mode feature.
        """
        row = self.dvv_rows.get(key)
        if row is None:
            row = DvvRow()
            self.dvv_rows[key] = row
        if any(cnt > row.vv.get(rep, 0) for rep, cnt in ctx.items()):
            # Client context references events we have not seen yet
            # (stale replica, or read served elsewhere): the update is
            # still safe — ctx only widens vv — but worth counting.
            self.dvv_context_misses += 1
            self._m_dvv_ctx_miss.inc()
        dot, pruned = row.update(ctx, source, timestamp, value,
                                 replica_id, self.dvv_sibling_cap)
        if pruned:
            self.dvv_sibling_prunes += pruned
            self._m_dvv_prunes.inc(pruned)
        self.writes_ok += 1
        self._m_writes_ok.inc()
        self._m_bytes_written.inc(self._value_size(value))
        self._m_dvv_siblings.observe(len(row.siblings))
        return dot, row

    def causal_merge(self, key: str, incoming: DvvRow) -> bool:
        """Join a replicated causal row into the local one.

        The receiving side of causal replication, read repair and
        anti-entropy.  Idempotent; returns True when the local row
        changed.
        """
        row = self.dvv_rows.get(key)
        if row is None:
            row = DvvRow()
            self.dvv_rows[key] = row
        changed, pruned = row.merge(incoming, self.dvv_sibling_cap)
        if pruned:
            self.dvv_sibling_prunes += pruned
            self._m_dvv_prunes.inc(pruned)
        if changed:
            self.writes_ok += 1
            self._m_writes_ok.inc()
            self._m_dvv_siblings.observe(len(row.siblings))
        return changed

    def causal_read(self, key: str) -> Optional[DvvRow]:
        """The causal row (siblings + context); None when absent."""
        self.reads += 1
        self._m_reads.inc()
        row = self.dvv_rows.get(key)
        if row is not None:
            for sib in row.siblings:
                self._m_bytes_read.inc(self._value_size(sib.value))
        return row
