"""Open-chaining hash table with incremental rehash.

Memcached's primary index is a power-of-two bucket array of chains that
is *incrementally* migrated to a doubled array when the load factor
passes 1.5 — a full stop-the-world rehash would violate the latency
target, so each subsequent operation moves a handful of buckets.  We
reproduce that structure (rather than using a plain ``dict``) because
the migration behaviour matters for tail latency and because it gives
the store a place to hang per-bucket statistics.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["HashTable", "fnv1a"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a(key: bytes) -> int:
    """64-bit FNV-1a — memcached's classic default hash."""
    h = _FNV_OFFSET
    for byte in key:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class _Cell:
    __slots__ = ("hash", "key", "value", "next")

    def __init__(self, h: int, key: bytes, value: Any,
                 nxt: Optional["_Cell"]) -> None:
        self.hash = h
        self.key = key
        self.value = value
        self.next = nxt


class HashTable:
    """Chained hash table keyed by ``bytes``.

    Parameters
    ----------
    initial_power:
        Buckets start at ``2**initial_power`` (memcached default 16; we
        default lower so tests exercise growth).
    max_load:
        Expansion threshold: items / buckets.
    migrate_per_op:
        Buckets moved to the new array per subsequent operation during
        an expansion.
    """

    def __init__(self, initial_power: int = 4, max_load: float = 1.5,
                 migrate_per_op: int = 2) -> None:
        self._power = initial_power
        self._buckets: list[Optional[_Cell]] = [None] * (1 << initial_power)
        self._old: Optional[list[Optional[_Cell]]] = None
        self._migrated = 0
        self.max_load = max_load
        self.migrate_per_op = migrate_per_op
        self.count = 0
        self.expansions = 0

    # -- internal helpers ------------------------------------------------
    @property
    def buckets(self) -> int:
        """Current bucket-array size."""
        return len(self._buckets)

    @property
    def expanding(self) -> bool:
        """True while an incremental migration is in progress."""
        return self._old is not None

    def _bucket_of(self, h: int, table: list[Optional[_Cell]]) -> int:
        return h & (len(table) - 1)

    def _step_migration(self) -> None:
        old = self._old
        if old is None:
            return
        moved = 0
        while self._migrated < len(old) and moved < self.migrate_per_op:
            cell = old[self._migrated]
            while cell is not None:
                nxt = cell.next
                idx = self._bucket_of(cell.hash, self._buckets)
                cell.next = self._buckets[idx]
                self._buckets[idx] = cell
                cell = nxt
            old[self._migrated] = None
            self._migrated += 1
            moved += 1
        if self._migrated >= len(old):
            self._old = None
            self._migrated = 0

    def _maybe_expand(self) -> None:
        if self._old is not None:
            return
        if self.count / len(self._buckets) > self.max_load:
            self._old = self._buckets
            self._migrated = 0
            self._power += 1
            self._buckets = [None] * (1 << self._power)
            self.expansions += 1

    def _find(self, key: bytes) -> tuple[
            Optional[list[Optional[_Cell]]], Optional[int],
            Optional[_Cell], Optional[_Cell], int]:
        """Yield the (table, index, prev, cell) chain positions to search."""
        h = fnv1a(key)
        tables = [self._buckets]
        if self._old is not None:
            tables.append(self._old)
        for table in tables:
            idx = self._bucket_of(h, table)
            prev = None
            cell = table[idx]
            while cell is not None:
                if cell.hash == h and cell.key == key:
                    return table, idx, prev, cell, h
                prev, cell = cell, cell.next
        return None, None, None, None, h

    # -- public API --------------------------------------------------------
    def get(self, key: bytes, default: Any = None) -> Any:
        """Value for ``key`` or ``default``."""
        self._step_migration()
        _t, _i, _p, cell, _h = self._find(key)
        return cell.value if cell is not None else default

    def __contains__(self, key: bytes) -> bool:
        _t, _i, _p, cell, _h = self._find(key)
        return cell is not None

    def put(self, key: bytes, value: Any) -> bool:
        """Insert or update.  Returns True when the key was new."""
        self._step_migration()
        table, idx, _prev, cell, h = self._find(key)
        if cell is not None:
            cell.value = value
            return False
        bidx = self._bucket_of(h, self._buckets)
        self._buckets[bidx] = _Cell(h, key, value, self._buckets[bidx])
        self.count += 1
        self._maybe_expand()
        return True

    def remove(self, key: bytes) -> Any:
        """Delete ``key``; returns its value or None when absent."""
        self._step_migration()
        table, idx, prev, cell, _h = self._find(key)
        if cell is None:
            return None
        assert table is not None and idx is not None
        if prev is None:
            table[idx] = cell.next
        else:
            prev.next = cell.next
        self.count -= 1
        return cell.value

    def __len__(self) -> int:
        return self.count

    def items(self) -> Iterator[tuple[bytes, Any]]:
        """Iterate all (key, value) pairs (both tables during expansion)."""
        tables = [self._buckets]
        if self._old is not None:
            tables.append(self._old)
        for table in tables:
            for cell in table:
                while cell is not None:
                    yield cell.key, cell.value
                    cell = cell.next

    def keys(self) -> Iterator[bytes]:
        """Iterate all keys."""
        for key, _value in self.items():
            yield key
