"""Local storage engines: the memcached clone and Sedna's extensions.

* :class:`MemStore` — slab allocator + chained hash table + per-class
  LRU, speaking the memcached command set.  Used standalone as the
  Fig. 7 baseline engine and embedded in every Sedna node.
* :class:`VersionedStore` — timestamped value lists with the Dirty and
  Monitors columns that back ``write_latest``/``write_all`` and the
  trigger subsystem.
"""

from .slab import OutOfMemory, SlabAllocator, SlabClass
from .lru import LruList, LruNode
from .hashtable import HashTable, fnv1a
from .crawler import ExpiryCrawler, reclaim_expired
from .memstore import Item, MemStore, StoreResult
from .protocol import (ParseError, ProtocolSession, Request, execute,
                       parse_request)
from .versioned import Row, ValueElement, VersionedStore, WriteOutcome

__all__ = [
    "OutOfMemory", "SlabAllocator", "SlabClass",
    "LruList", "LruNode",
    "HashTable", "fnv1a",
    "ExpiryCrawler", "reclaim_expired",
    "Item", "MemStore", "StoreResult",
    "ParseError", "ProtocolSession", "Request", "execute", "parse_request",
    "Row", "ValueElement", "VersionedStore", "WriteOutcome",
]
