"""MemStore — the memcached-compatible in-memory store.

This is the "modified Memcached" of the paper (§VI): Sedna runs one
MemStore per real node as its local memory storage, and the Fig. 7
baseline (a plain memcached cluster accessed through a client-side
sharding client) uses unmodified MemStores.

Implemented command set (the memcached text-protocol core):

``set / add / replace / append / prepend / cas / get / gets / delete /
incr / decr / touch / flush_all / stats``

Semantics follow the memcached protocol description: per-item TTL with
lazy expiry, per-slab-class LRU eviction under the memory limit, CAS
token invalidated by every mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

from .hashtable import HashTable
from .lru import LruList, LruNode
from .slab import OutOfMemory, SlabAllocator, SlabClass

__all__ = ["Item", "MemStore", "StoreResult"]

# Result vocabulary mirroring the memcached protocol replies.
class StoreResult:
    """String constants used as command outcomes."""

    STORED = "STORED"
    NOT_STORED = "NOT_STORED"
    EXISTS = "EXISTS"          # cas: token mismatch
    NOT_FOUND = "NOT_FOUND"
    DELETED = "DELETED"
    TOO_LARGE = "SERVER_ERROR object too large"


ITEM_OVERHEAD = 48  # bytes of per-item metadata, matching memcached's order


class Item:
    """A stored item: value bytes plus protocol metadata."""

    __slots__ = ("key", "value", "flags", "expires_at", "cas", "slab_class",
                 "lru_node")

    def __init__(self, key: bytes, value: bytes, flags: int,
                 expires_at: float, cas: int, slab_class: SlabClass) -> None:
        self.key = key
        self.value = value
        self.flags = flags
        self.expires_at = expires_at  # 0.0 = never
        self.cas = cas
        self.slab_class = slab_class
        self.lru_node: Optional[LruNode] = None

    def size(self) -> int:
        """Accounted byte footprint (key + value + metadata)."""
        return len(self.key) + len(self.value) + ITEM_OVERHEAD


class MemStore:
    """One memcached-style storage engine instance.

    Parameters
    ----------
    memory_limit:
        Byte budget (paper: 4 GB per non-ZooKeeper server).
    clock:
        Zero-argument callable returning the current time in seconds;
        inject ``lambda: sim.now`` to run on simulated time.
    metrics / node:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` plus an
        owner label; when given, command counts and byte volumes are
        exported as ``mem.*`` series (no-op handles otherwise).
    """

    def __init__(self, memory_limit: int = 64 << 20,
                 clock: Optional[Callable[[], float]] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 node: str = "") -> None:
        self.slabs = SlabAllocator(memory_limit)
        self.table = HashTable(initial_power=6)
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._lrus: dict[int, LruList] = {}
        self._cas_counter = 0
        # Stats counters (memcached "stats" command).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired_reclaims = 0
        self.cmd_get = 0
        self.cmd_set = 0
        self.flush_epoch = -1.0
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_get = metrics.counter("mem.cmd_get", node=node)
        self._m_set = metrics.counter("mem.cmd_set", node=node)
        self._m_hits = metrics.counter("mem.hits", node=node)
        self._m_misses = metrics.counter("mem.misses", node=node)
        self._m_evictions = metrics.counter("mem.evictions", node=node)
        self._m_bytes_in = metrics.counter("mem.bytes_in", node=node)
        self._m_bytes_out = metrics.counter("mem.bytes_out", node=node)

    # -- internals ----------------------------------------------------------
    def _lru(self, cls: SlabClass) -> LruList:
        lru = self._lrus.get(cls.index)
        if lru is None:
            lru = LruList()
            self._lrus[cls.index] = lru
        return lru

    def _next_cas(self) -> int:
        self._cas_counter += 1
        return self._cas_counter

    def _live(self, item: Optional[Item]) -> Optional[Item]:
        """Return the item if live, reclaiming it lazily when stale."""
        if item is None:
            return None
        now = self.clock()
        stale = (item.expires_at != 0.0 and item.expires_at <= now)
        if stale:
            self._unlink(item)
            self.expired_reclaims += 1
            return None
        return item

    def _unlink(self, item: Item) -> None:
        self.table.remove(item.key)
        if item.lru_node is not None and item.lru_node.owner is not None:
            self._lru(item.slab_class).unlink(item.lru_node)
        self.slabs.free(item.slab_class)

    def _evict_one(self, cls: SlabClass) -> bool:
        """Evict the LRU item of ``cls``; returns False when none exist."""
        node = self._lru(cls).pop_back()
        if node is None:
            return False
        victim: Item = node.item
        self.table.remove(victim.key)
        self.slabs.free(victim.slab_class)
        self.evictions += 1
        self._m_evictions.inc()
        return True

    def _store(self, key: bytes, value: bytes, flags: int, ttl: float) -> str:
        size = len(key) + len(value) + ITEM_OVERHEAD
        cls = self.slabs.class_for(size)
        if cls is None:
            return StoreResult.TOO_LARGE
        old = self._live(self.table.get(key))
        if old is not None:
            self._unlink(old)
        while True:
            try:
                self.slabs.alloc(cls)
                break
            except OutOfMemory:
                if not self._evict_one(cls):
                    return StoreResult.TOO_LARGE
        expires = self.clock() + ttl if ttl > 0 else 0.0
        item = Item(key, value, flags, expires, self._next_cas(), cls)
        node = LruNode(item)
        item.lru_node = node
        self._lru(cls).push_front(node)
        self.table.put(key, item)
        self._m_bytes_in.inc(len(key) + len(value))
        return StoreResult.STORED

    def _lookup(self, key: bytes) -> Optional[Item]:
        item = self._live(self.table.get(key))
        if item is not None and item.lru_node is not None:
            self._lru(item.slab_class).touch(item.lru_node)
        return item

    # -- protocol commands ----------------------------------------------------
    def set(self, key: bytes, value: bytes, flags: int = 0, ttl: float = 0) -> str:
        """Unconditionally store."""
        self.cmd_set += 1
        self._m_set.inc()
        return self._store(key, value, flags, ttl)

    def add(self, key: bytes, value: bytes, flags: int = 0, ttl: float = 0) -> str:
        """Store only when the key does not exist."""
        self.cmd_set += 1
        self._m_set.inc()
        if self._live(self.table.get(key)) is not None:
            return StoreResult.NOT_STORED
        return self._store(key, value, flags, ttl)

    def replace(self, key: bytes, value: bytes, flags: int = 0, ttl: float = 0) -> str:
        """Store only when the key already exists."""
        self.cmd_set += 1
        self._m_set.inc()
        if self._live(self.table.get(key)) is None:
            return StoreResult.NOT_STORED
        return self._store(key, value, flags, ttl)

    def append(self, key: bytes, suffix: bytes) -> str:
        """Concatenate ``suffix`` after the existing value."""
        item = self._live(self.table.get(key))
        if item is None:
            return StoreResult.NOT_STORED
        return self._store(key, item.value + suffix, item.flags,
                           0 if not item.expires_at else item.expires_at - self.clock())

    def prepend(self, key: bytes, prefix: bytes) -> str:
        """Concatenate ``prefix`` before the existing value."""
        item = self._live(self.table.get(key))
        if item is None:
            return StoreResult.NOT_STORED
        return self._store(key, prefix + item.value, item.flags,
                           0 if not item.expires_at else item.expires_at - self.clock())

    def cas(self, key: bytes, value: bytes, cas_token: int,
            flags: int = 0, ttl: float = 0) -> str:
        """Compare-and-swap against the token from :meth:`gets`."""
        item = self._live(self.table.get(key))
        if item is None:
            return StoreResult.NOT_FOUND
        if item.cas != cas_token:
            return StoreResult.EXISTS
        return self._store(key, value, flags, ttl)

    def get(self, key: bytes) -> Optional[bytes]:
        """Value bytes, or None on miss/expiry."""
        self.cmd_get += 1
        self._m_get.inc()
        item = self._lookup(key)
        if item is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        self.hits += 1
        self._m_hits.inc()
        self._m_bytes_out.inc(len(item.value))
        return item.value

    def gets(self, key: bytes) -> Optional[tuple[bytes, int]]:
        """(value, cas token) for CAS round-trips."""
        self.cmd_get += 1
        self._m_get.inc()
        item = self._lookup(key)
        if item is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        self.hits += 1
        self._m_hits.inc()
        self._m_bytes_out.inc(len(item.value))
        return item.value, item.cas

    def get_many(self, keys: list[bytes]) -> dict[bytes, bytes]:
        """Multi-get; missing keys are simply absent from the result."""
        out: dict[bytes, bytes] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    # Protocol-facing name (memcached ``get k1 k2 ...`` retrieves many
    # keys in one round-trip).
    get_multi = get_many

    def set_multi(self, pairs: dict[bytes, bytes], flags: int = 0,
                  ttl: float = 0) -> dict[bytes, str]:
        """Batch :meth:`set`: one result per key, applied in order."""
        return {key: self.set(key, value, flags, ttl)
                for key, value in pairs.items()}

    def delete(self, key: bytes) -> str:
        """Remove ``key``."""
        item = self._live(self.table.get(key))
        if item is None:
            return StoreResult.NOT_FOUND
        self._unlink(item)
        return StoreResult.DELETED

    def _arith(self, key: bytes, delta: int) -> Optional[int]:
        item = self._live(self.table.get(key))
        if item is None:
            return None
        try:
            current = int(item.value)
        except ValueError:
            raise ValueError("cannot increment or decrement non-numeric value")
        new = max(0, current + delta)  # memcached clamps decr at 0
        item.value = str(new).encode()
        item.cas = self._next_cas()
        return new

    def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """Increment a numeric value; None when the key is missing."""
        return self._arith(key, delta)

    def decr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """Decrement (clamped at zero); None when the key is missing."""
        return self._arith(key, -delta)

    def touch(self, key: bytes, ttl: float) -> str:
        """Reset the TTL without reading the value."""
        item = self._live(self.table.get(key))
        if item is None:
            return StoreResult.NOT_FOUND
        item.expires_at = self.clock() + ttl if ttl > 0 else 0.0
        return StoreResult.STORED

    def flush_all(self) -> None:
        """Drop everything (eagerly, unlike real memcached's lazy flush)."""
        for key in list(self.table.keys()):
            item = self.table.get(key)
            if item is not None:
                self._unlink(item)

    def keys(self) -> Iterator[bytes]:
        """All live keys (test/diagnostic aid; not a memcached verb)."""
        now = self.clock()
        for key, item in list(self.table.items()):
            if item.expires_at == 0.0 or item.expires_at > now:
                yield key

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, key: bytes) -> bool:
        return self._live(self.table.get(key)) is not None

    def stats(self) -> dict:
        """memcached-style statistics snapshot."""
        return {
            "curr_items": len(self.table),
            "cmd_get": self.cmd_get,
            "cmd_set": self.cmd_set,
            "get_hits": self.hits,
            "get_misses": self.misses,
            "evictions": self.evictions,
            "expired_reclaims": self.expired_reclaims,
            "bytes_limit": self.slabs.memory_limit,
            "bytes_pages": self.slabs.memory_used,
            "hash_buckets": self.table.buckets,
            "hash_expansions": self.table.expansions,
        }
