"""Slab-class memory allocator (memcached style).

Sedna "uses modified Memcached as its local memory storage system"
(§VI).  Memcached's defining allocation strategy is the slab allocator:
memory is carved into fixed-size *pages* (classically 1 MB); each page
is assigned to a *slab class* and split into equal chunks; an item of
``n`` bytes is stored in the smallest class whose chunk size fits it.
Chunk sizes grow geometrically by a configurable factor.

Running inside CPython we obviously do not manage raw memory — the
allocator does the *accounting* (which class an item lands in, when a
class runs out of chunks, when the global memory limit forces eviction)
so that the store's eviction behaviour and memory-pressure dynamics
match the real engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SlabClass", "SlabAllocator", "OutOfMemory"]


class OutOfMemory(Exception):
    """No free chunk and no page budget left; caller must evict."""


@dataclass
class SlabClass:
    """One size class: all chunks in its pages have ``chunk_size`` bytes."""

    index: int
    chunk_size: int
    chunks_per_page: int
    pages: int = 0
    used_chunks: int = 0
    free_chunks: int = 0
    # Lifetime counters for the stats command.
    total_allocs: int = 0
    total_frees: int = 0

    @property
    def total_chunks(self) -> int:
        """Chunks carved so far (used + free)."""
        return self.used_chunks + self.free_chunks


class SlabAllocator:
    """Accounting slab allocator.

    Parameters
    ----------
    memory_limit:
        Total memory budget in bytes (memcached ``-m``, the paper
        configured 4 GB per Sedna server).
    page_size:
        Page granularity, default 1 MB like memcached.
    min_chunk:
        Smallest chunk size, default 96 bytes.
    growth_factor:
        Geometric chunk-size growth, default 1.25 (memcached ``-f``).
    """

    def __init__(self, memory_limit: int, page_size: int = 1 << 20,
                 min_chunk: int = 96, growth_factor: float = 1.25) -> None:
        if memory_limit < page_size:
            raise ValueError("memory limit smaller than one page")
        if growth_factor <= 1.0:
            raise ValueError("growth factor must exceed 1")
        self.memory_limit = memory_limit
        self.page_size = page_size
        self.classes: list[SlabClass] = []
        size = min_chunk
        idx = 0
        while size < page_size:
            self.classes.append(SlabClass(
                index=idx, chunk_size=size,
                chunks_per_page=page_size // size))
            idx += 1
            size = max(size + 1, int(size * growth_factor))
            # Align like memcached: round up to 8 bytes.
            size = (size + 7) & ~7
        # Final class: one whole page per item.
        self.classes.append(SlabClass(index=idx, chunk_size=page_size,
                                      chunks_per_page=1))
        self.pages_allocated = 0

    @property
    def max_item_size(self) -> int:
        """Largest storable item (one page)."""
        return self.page_size

    @property
    def memory_used(self) -> int:
        """Bytes of pages handed out so far."""
        return self.pages_allocated * self.page_size

    def class_for(self, size: int) -> SlabClass | None:
        """Smallest class whose chunks fit ``size``; None when too large.

        Binary search over the (sorted) chunk sizes.
        """
        if size > self.page_size:
            return None
        lo, hi = 0, len(self.classes) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.classes[mid].chunk_size < size:
                lo = mid + 1
            else:
                hi = mid
        return self.classes[lo]

    def alloc(self, cls: SlabClass) -> None:
        """Take one chunk from ``cls``.

        Grabs a fresh page when the class has no free chunk and budget
        remains; otherwise raises :class:`OutOfMemory` — the store then
        evicts an item *of the same class* (memcached's per-class LRU
        eviction) and retries.
        """
        if cls.free_chunks == 0:
            if (self.pages_allocated + 1) * self.page_size > self.memory_limit:
                raise OutOfMemory(f"class {cls.index} exhausted")
            self.pages_allocated += 1
            cls.pages += 1
            cls.free_chunks += cls.chunks_per_page
        cls.free_chunks -= 1
        cls.used_chunks += 1
        cls.total_allocs += 1

    def free(self, cls: SlabClass) -> None:
        """Return one chunk to ``cls``'s free list."""
        if cls.used_chunks <= 0:
            raise ValueError(f"double free in class {cls.index}")
        cls.used_chunks -= 1
        cls.free_chunks += 1
        cls.total_frees += 1

    def stats(self) -> dict:
        """Per-class and global accounting snapshot."""
        return {
            "memory_limit": self.memory_limit,
            "memory_used": self.memory_used,
            "pages": self.pages_allocated,
            "classes": [
                {
                    "index": c.index,
                    "chunk_size": c.chunk_size,
                    "pages": c.pages,
                    "used_chunks": c.used_chunks,
                    "free_chunks": c.free_chunks,
                }
                for c in self.classes if c.pages > 0
            ],
        }
