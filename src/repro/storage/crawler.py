"""Proactive expiry reclamation (memcached's ``lru_crawler``).

MemStore expiry is lazy: an expired item occupies its chunk until
someone touches its key.  Real memcached grew a background *LRU
crawler* precisely because lazily-expired items pin memory that the
slab allocator then steals from live data via eviction.  This module
reproduces it:

* :meth:`MemStore.reclaim_expired` — one bounded sweep (added here as a
  function to keep the engine module protocol-focused);
* :class:`ExpiryCrawler` — the background process pacing sweeps on the
  simulation clock.
"""

from __future__ import annotations

from typing import Generator

from ..net.simulator import Simulator
from .memstore import MemStore

__all__ = ["reclaim_expired", "ExpiryCrawler"]


def reclaim_expired(store: MemStore, max_items: int = 0) -> int:
    """Sweep the table and unlink expired items; returns the count.

    ``max_items`` bounds one sweep (0 = unbounded) so a crawler pass
    cannot monopolize the simulated CPU.
    """
    now = store.clock()
    reclaimed = 0
    for key, item in list(store.table.items()):
        if item.expires_at != 0.0 and item.expires_at <= now:
            store._unlink(item)
            store.expired_reclaims += 1
            reclaimed += 1
            if max_items and reclaimed >= max_items:
                break
    return reclaimed


class ExpiryCrawler:
    """Background sweeper for one MemStore."""

    def __init__(self, sim: Simulator, store: MemStore,
                 interval: float = 5.0, items_per_pass: int = 1000) -> None:
        self.sim = sim
        self.store = store
        self.interval = interval
        self.items_per_pass = items_per_pass
        self.running = False
        self.passes = 0
        self.total_reclaimed = 0

    def start(self) -> None:
        """Spawn the sweep loop."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name="expiry-crawler")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    def _loop(self) -> Generator[object, object, None]:
        sweep = self.sim.recurring(self.interval)
        while self.running:
            yield sweep.tick()
            if not self.running:
                return
            self.passes += 1
            self.total_reclaimed += reclaim_expired(self.store,
                                                    self.items_per_pass)
