"""Intrusive doubly-linked LRU list.

Memcached keeps one LRU list *per slab class*; eviction under memory
pressure removes from the tail of the class that needs a chunk.  The
store in :mod:`repro.storage.memstore` does the same, so this list is a
hot structure: O(1) push/unlink/touch, no allocation beyond the node.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["LruNode", "LruList"]


class LruNode:
    """A list node carrying an arbitrary ``item`` payload."""

    __slots__ = ("item", "prev", "next", "owner")

    def __init__(self, item: Any) -> None:
        self.item = item
        self.prev: Optional["LruNode"] = None
        self.next: Optional["LruNode"] = None
        self.owner: Optional["LruList"] = None


class LruList:
    """Doubly-linked list ordered most-recent first."""

    __slots__ = ("head", "tail", "size")

    def __init__(self) -> None:
        self.head: Optional[LruNode] = None
        self.tail: Optional[LruNode] = None
        self.size = 0

    def push_front(self, node: LruNode) -> None:
        """Insert ``node`` as the most recently used entry."""
        if node.owner is not None:
            raise ValueError("node already linked")
        node.owner = self
        node.prev = None
        node.next = self.head
        if self.head is not None:
            self.head.prev = node
        self.head = node
        if self.tail is None:
            self.tail = node
        self.size += 1

    def unlink(self, node: LruNode) -> None:
        """Remove ``node`` from the list."""
        if node.owner is not self:
            raise ValueError("node not linked to this list")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        node.owner = None
        self.size -= 1

    def touch(self, node: LruNode) -> None:
        """Move ``node`` to the front (mark as just used)."""
        if node is self.head:
            return
        self.unlink(node)
        self.push_front(node)

    def pop_back(self) -> Optional[LruNode]:
        """Remove and return the least recently used node, or None."""
        node = self.tail
        if node is not None:
            self.unlink(node)
        return node

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[LruNode]:
        """Iterate from most to least recently used."""
        node = self.head
        while node is not None:
            nxt = node.next
            yield node
            node = nxt
