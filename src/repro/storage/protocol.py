"""The memcached text protocol: incremental parser + executor.

The baseline system of §VI is "a Memcached cluster"; the engine in
:mod:`repro.storage.memstore` implements its semantics, and this module
implements its *wire protocol* so the clone is usable the way real
memcached is: byte streams in, byte streams out.

Grammar (the classic text protocol):

* storage — ``set|add|replace|append|prepend <key> <flags> <exptime>
  <bytes> [noreply]\\r\\n<data>\\r\\n`` and ``cas ... <casid>``;
* retrieval — ``get|gets <key>+\\r\\n`` answered by ``VALUE <key>
  <flags> <bytes> [<cas>]\\r\\n<data>\\r\\n`` blocks and ``END``;
* ``delete``, ``incr``/``decr``, ``touch``, ``flush_all``, ``stats``,
  ``version``, ``verbosity``.

:class:`ProtocolSession` holds per-connection buffer state, so partial
and pipelined input behave exactly like a socket stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .memstore import MemStore, StoreResult

__all__ = ["Request", "ParseError", "parse_request", "execute",
           "ProtocolSession", "MAX_KEY_LENGTH"]

MAX_KEY_LENGTH = 250

_STORAGE_VERBS = {b"set", b"add", b"replace", b"append", b"prepend", b"cas"}
_OTHER_VERBS = {b"get", b"gets", b"delete", b"incr", b"decr", b"touch",
                b"flush_all", b"stats", b"version", b"verbosity", b"quit"}


class ParseError(Exception):
    """Malformed input; the session answers ``CLIENT_ERROR``."""


@dataclass
class Request:
    """One parsed protocol command."""

    verb: bytes
    keys: list[bytes] = field(default_factory=list)
    flags: int = 0
    exptime: float = 0
    data: bytes = b""
    cas: int = 0
    delta: int = 0
    noreply: bool = False


def _validate_key(key: bytes) -> bytes:
    if not key or len(key) > MAX_KEY_LENGTH:
        raise ParseError("bad key length")
    if b" " in key or b"\r" in key or b"\n" in key:
        raise ParseError("invalid key characters")
    return key


def _int_field(token: bytes, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ParseError(f"bad {what}")


def parse_request(buffer: bytes) -> tuple[Optional[Request], bytes]:
    """Parse one complete command off ``buffer``.

    Returns ``(request, remaining_bytes)``, or ``(None, buffer)`` when
    the buffer does not yet hold a full command (caller awaits more
    input).  Raises :class:`ParseError` on malformed complete commands
    — the unparseable line is consumed so the stream can resync.
    """
    newline = buffer.find(b"\r\n")
    if newline < 0:
        return None, buffer
    line = buffer[:newline]
    rest = buffer[newline + 2:]
    parts = line.split()
    if not parts:
        raise ParseError("empty command")
    verb = parts[0].lower()

    if verb in _STORAGE_VERBS:
        want = 6 if verb == b"cas" else 5
        has_noreply = len(parts) == want + 1 and parts[-1] == b"noreply"
        if len(parts) != want and not has_noreply:
            raise ParseError(f"wrong argument count for {verb.decode()}")
        key = _validate_key(parts[1])
        flags = _int_field(parts[2], "flags")
        exptime = _int_field(parts[3], "exptime")
        nbytes = _int_field(parts[4], "bytes")
        if nbytes < 0 or nbytes > (1 << 20):
            raise ParseError("bad data chunk size")
        cas = _int_field(parts[5], "cas id") if verb == b"cas" else 0
        # The data block plus its trailing CRLF must be present.
        if len(rest) < nbytes + 2:
            return None, buffer
        data = rest[:nbytes]
        if rest[nbytes:nbytes + 2] != b"\r\n":
            raise ParseError("bad data chunk terminator")
        return (Request(verb=verb, keys=[key], flags=flags, exptime=exptime,
                        data=data, cas=cas, noreply=has_noreply),
                rest[nbytes + 2:])

    if verb in (b"get", b"gets"):
        if len(parts) < 2:
            raise ParseError("get needs at least one key")
        keys = [_validate_key(k) for k in parts[1:]]
        return Request(verb=verb, keys=keys), rest

    if verb == b"delete":
        if len(parts) not in (2, 3):
            raise ParseError("wrong argument count for delete")
        noreply = len(parts) == 3 and parts[2] == b"noreply"
        return Request(verb=verb, keys=[_validate_key(parts[1])],
                       noreply=noreply), rest

    if verb in (b"incr", b"decr"):
        if len(parts) not in (3, 4):
            raise ParseError(f"wrong argument count for {verb.decode()}")
        noreply = len(parts) == 4 and parts[3] == b"noreply"
        return Request(verb=verb, keys=[_validate_key(parts[1])],
                       delta=_int_field(parts[2], "delta"),
                       noreply=noreply), rest

    if verb == b"touch":
        if len(parts) not in (3, 4):
            raise ParseError("wrong argument count for touch")
        noreply = len(parts) == 4 and parts[3] == b"noreply"
        return Request(verb=verb, keys=[_validate_key(parts[1])],
                       exptime=_int_field(parts[2], "exptime"),
                       noreply=noreply), rest

    if verb in (b"flush_all", b"stats", b"version", b"quit"):
        return Request(verb=verb), rest

    if verb == b"verbosity":
        return Request(verb=verb), rest

    raise ParseError(f"unknown command {verb.decode(errors='replace')}")


_RESULT_BYTES = {
    StoreResult.STORED: b"STORED\r\n",
    StoreResult.NOT_STORED: b"NOT_STORED\r\n",
    StoreResult.EXISTS: b"EXISTS\r\n",
    StoreResult.NOT_FOUND: b"NOT_FOUND\r\n",
    StoreResult.DELETED: b"DELETED\r\n",
    StoreResult.TOO_LARGE: b"SERVER_ERROR object too large for cache\r\n",
}


def execute(store: MemStore, req: Request) -> bytes:
    """Run a parsed request against the engine; returns response bytes.

    ``noreply`` suppression is the caller's job (the session handles
    it) so this function stays a pure command → response mapping.
    """
    verb = req.verb
    if verb in (b"get", b"gets"):
        out = bytearray()
        for key in req.keys:
            if verb == b"gets":
                hit = store.gets(key)
                if hit is not None:
                    value, cas = hit
                    item = store.table.get(key)
                    out += (b"VALUE %s %d %d %d\r\n"
                            % (key, item.flags, len(value), cas))
                    out += value + b"\r\n"
            else:
                value = store.get(key)
                if value is not None:
                    item = store.table.get(key)
                    out += (b"VALUE %s %d %d\r\n"
                            % (key, item.flags, len(value)))
                    out += value + b"\r\n"
        out += b"END\r\n"
        return bytes(out)

    if verb in _STORAGE_VERBS:
        key = req.keys[0]
        if verb == b"set":
            result = store.set(key, req.data, req.flags, req.exptime)
        elif verb == b"add":
            result = store.add(key, req.data, req.flags, req.exptime)
        elif verb == b"replace":
            result = store.replace(key, req.data, req.flags, req.exptime)
        elif verb == b"append":
            result = store.append(key, req.data)
        elif verb == b"prepend":
            result = store.prepend(key, req.data)
        else:  # cas
            result = store.cas(key, req.data, req.cas, req.flags, req.exptime)
        return _RESULT_BYTES[result]

    if verb == b"delete":
        return _RESULT_BYTES[store.delete(req.keys[0])]

    if verb in (b"incr", b"decr"):
        if req.delta < 0:
            return (b"CLIENT_ERROR invalid numeric delta argument\r\n")
        try:
            if verb == b"incr":
                value = store.incr(req.keys[0], req.delta)
            else:
                value = store.decr(req.keys[0], req.delta)
        except ValueError:
            return (b"CLIENT_ERROR cannot increment or decrement"
                    b" non-numeric value\r\n")
        if value is None:
            return b"NOT_FOUND\r\n"
        return b"%d\r\n" % value

    if verb == b"touch":
        result = store.touch(req.keys[0], req.exptime)
        return b"TOUCHED\r\n" if result == StoreResult.STORED \
            else b"NOT_FOUND\r\n"

    if verb == b"flush_all":
        store.flush_all()
        return b"OK\r\n"

    if verb == b"stats":
        out = bytearray()
        for name, value in sorted(store.stats().items()):
            out += b"STAT %s %s\r\n" % (name.encode(), str(value).encode())
        out += b"END\r\n"
        return bytes(out)

    if verb == b"version":
        return b"VERSION 1.4.2-repro\r\n"

    if verb == b"verbosity":
        return b"OK\r\n"

    if verb == b"quit":
        return b""

    return b"ERROR\r\n"


class ProtocolSession:
    """One client connection's parser state + executor.

    Feed raw bytes in any chunking; complete commands execute against
    the store and their responses accumulate in the returned bytes.
    """

    def __init__(self, store: MemStore) -> None:
        self.store = store
        self._buffer = b""
        self.closed = False
        self.commands = 0
        self.parse_errors = 0

    def feed(self, data: bytes) -> bytes:
        """Consume ``data``; returns response bytes (possibly empty)."""
        if self.closed:
            return b""
        self._buffer += data
        out = bytearray()
        while True:
            try:
                req, remaining = parse_request(self._buffer)
            except ParseError as err:
                self.parse_errors += 1
                # Resync: the offending line was consumed by the parser
                # raising after it split off the line.
                newline = self._buffer.find(b"\r\n")
                self._buffer = self._buffer[newline + 2:] if newline >= 0 \
                    else b""
                out += b"CLIENT_ERROR %s\r\n" % str(err).encode()
                continue
            if req is None:
                break
            self._buffer = remaining
            self.commands += 1
            if req.verb == b"quit":
                self.closed = True
                break
            response = execute(self.store, req)
            if not req.noreply:
                out += response
        return bytes(out)
