"""Baseline systems the paper compares against (§VI): memcached."""

from .memcached import (MemcachedCluster, MemcachedClusterClient,
                        MemcachedServer)
from .ketama import KetamaRing
from .wire import WireMemcachedClient, WireMemcachedServer

__all__ = ["KetamaRing",
           "MemcachedCluster", "MemcachedClusterClient", "MemcachedServer",
           "WireMemcachedClient", "WireMemcachedServer"]
