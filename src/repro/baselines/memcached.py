"""The Memcached baseline of §VI: servers plus a client-side-sharding client.

The paper compares Sedna against "current popular distributed memory
cache system" — a fleet of plain memcached servers addressed by a
client that shards keys client-side ("Some MemCached clients support a
distributed way to write data, we use this features in MemCached test
programs").

Two crucial asymmetries the experiment isolates (§VI.A.1):

* Memcached(1): each datum written/read **once** — no replication.
* Memcached(3): each datum written/read **three times, sequentially**
  from the client ("in Memcached these reads and writes requests were
  issued sequentially"), versus Sedna's three **parallel** replica
  writes issued by the coordinator.
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.latency import MEMCACHED_OP
from ..net.rpc import RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Simulator
from ..net.transport import Network
from ..storage.hashtable import fnv1a
from ..storage.memstore import MemStore

__all__ = ["MemcachedServer", "MemcachedClusterClient", "MemcachedCluster"]


class MemcachedServer:
    """One memcached server: a MemStore behind the RPC surface."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 memory_limit: int = 64 << 20):
        self.sim = sim
        self.name = name
        self.store = MemStore(memory_limit=memory_limit,
                              clock=lambda: sim.now)
        self.rpc = RpcNode(network, name, service_time=MEMCACHED_OP)
        self.rpc.register("mc.set", self._h_set)
        self.rpc.register("mc.get", self._h_get)
        self.rpc.register("mc.mget", self._h_mget)
        self.rpc.register("mc.mset", self._h_mset)
        self.rpc.register("mc.delete", self._h_delete)
        self.rpc.register("mc.stats", self._h_stats)

    def _h_set(self, src: str, args: Any):
        return self.store.set(args["key"], args["value"],
                              flags=args.get("flags", 0),
                              ttl=args.get("ttl", 0))

    def _h_get(self, src: str, args: Any):
        value = self.store.get(args["key"])
        return {"value": value}

    def _h_mget(self, src: str, args: Any):
        """``get k1 k2 ...`` — many keys, one round-trip."""
        return {"values": self.store.get_multi(args["keys"])}

    def _h_mset(self, src: str, args: Any):
        return {"results": self.store.set_multi(args["pairs"])}

    def _h_delete(self, src: str, args: Any):
        return self.store.delete(args["key"])

    def _h_stats(self, src: str, args: Any):
        return self.store.stats()

    def crash(self) -> None:
        """Take the server down."""
        self.rpc.endpoint.crash()


class MemcachedClusterClient:
    """Client-side sharding client (the paper's test-program behaviour)."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 servers: list[str], timeout: float = 2.0,
                 hashing: str = "mod"):
        self.sim = sim
        self.name = name
        self.servers = list(servers)
        self.timeout = timeout
        self.rpc = RpcNode(network, name)
        if hashing == "ketama":
            from .ketama import KetamaRing
            self.ketama = KetamaRing(self.servers)
        elif hashing == "mod":
            self.ketama = None
        else:
            raise ValueError(f"unknown hashing strategy {hashing!r}")
        self.write_latencies: list[float] = []
        self.read_latencies: list[float] = []
        self.failures = 0

    def _shard(self, key: bytes, offset: int = 0) -> str:
        """Key → server: hash-mod (classic) or ketama continuum, plus
        ``offset`` selecting the next distinct server for extra copies."""
        if self.ketama is not None:
            return self.ketama.node_for(key, offset)
        idx = (fnv1a(key) + offset) % len(self.servers)
        return self.servers[idx]

    def set(self, key: bytes, value: bytes, copies: int = 1):
        """Store ``copies`` copies **sequentially** on successive shards.

        copies=1 reproduces Memcached(1); copies=3 reproduces the
        Memcached(3) series of Fig. 7(a).
        """
        t0 = self.sim.now
        try:
            for c in range(copies):
                yield from self.rpc.call(self._shard(key, c), "mc.set",
                                         {"key": key, "value": value},
                                         timeout=self.timeout)
        except (RpcTimeout, RpcRejected):
            self.failures += 1
            self.write_latencies.append(self.sim.now - t0)
            return False
        self.write_latencies.append(self.sim.now - t0)
        return True

    def get(self, key: bytes, copies: int = 1):
        """Read the key from ``copies`` shards sequentially; returns the
        first non-None value (paper's 3x-read comparison)."""
        t0 = self.sim.now
        found: Optional[bytes] = None
        try:
            for c in range(copies):
                result = yield from self.rpc.call(self._shard(key, c),
                                                  "mc.get", {"key": key},
                                                  timeout=self.timeout)
                if found is None and result["value"] is not None:
                    found = result["value"]
        except (RpcTimeout, RpcRejected):
            self.failures += 1
            self.read_latencies.append(self.sim.now - t0)
            return found
        self.read_latencies.append(self.sim.now - t0)
        return found

    def delete(self, key: bytes, copies: int = 1):
        """Delete from ``copies`` shards sequentially."""
        for c in range(copies):
            try:
                yield from self.rpc.call(self._shard(key, c), "mc.delete",
                                         {"key": key}, timeout=self.timeout)
            except (RpcTimeout, RpcRejected):
                self.failures += 1
        return True

    def set_multi(self, pairs: dict):
        """Batch store: shard the pairs, one ``mc.mset`` per server.

        Real memcached clients coalesce multi-key writes into one
        round-trip per shard; this is the fair-comparison counterpart
        of Sedna's ``mwrite`` batch path.
        """
        t0 = self.sim.now
        by_server: dict[str, dict] = {}
        for key, value in pairs.items():
            by_server.setdefault(self._shard(key), {})[key] = value
        stored = 0
        for server in sorted(by_server):
            try:
                result = yield from self.rpc.call(
                    server, "mc.mset", {"pairs": by_server[server]},
                    timeout=self.timeout)
                stored += sum(1 for ok in result["results"].values() if ok)
            except (RpcTimeout, RpcRejected):
                self.failures += 1
        self.write_latencies.append(self.sim.now - t0)
        return stored

    def get_multi(self, keys: list):
        """Batch read: one ``mc.mget`` per shard, merged result dict."""
        t0 = self.sim.now
        by_server: dict[str, list] = {}
        for key in keys:
            by_server.setdefault(self._shard(key), []).append(key)
        found: dict = {}
        for server in sorted(by_server):
            try:
                result = yield from self.rpc.call(
                    server, "mc.mget", {"keys": by_server[server]},
                    timeout=self.timeout)
                for key, value in result["values"].items():
                    if value is not None:
                        found[key] = value
            except (RpcTimeout, RpcRejected):
                self.failures += 1
        self.read_latencies.append(self.sim.now - t0)
        return found

    def stats(self):
        """Fleet-wide ``stats`` sweep: one dict per reachable server."""
        per_server: dict[str, Any] = {}
        for server in self.servers:
            try:
                per_server[server] = yield from self.rpc.call(
                    server, "mc.stats", {}, timeout=self.timeout)
            except (RpcTimeout, RpcRejected):
                self.failures += 1
        return per_server


class MemcachedCluster:
    """Assembly: N memcached servers on the simulated network."""

    def __init__(self, sim: Simulator, network: Network, size: int = 9,
                 prefix: str = "mc", memory_limit: int = 64 << 20):
        self.sim = sim
        self.network = network
        self.names = [f"{prefix}{i}" for i in range(size)]
        self.servers = [MemcachedServer(sim, network, name, memory_limit)
                        for name in self.names]
        self._clients = 0

    def client(self, name: Optional[str] = None) -> MemcachedClusterClient:
        """A new sharding client over the whole fleet."""
        self._clients += 1
        return MemcachedClusterClient(
            self.sim, self.network, name or f"mc-client{self._clients}",
            self.names)

    def total_items(self) -> int:
        """Items stored across the fleet."""
        return sum(len(server.store) for server in self.servers)
