"""Ketama consistent hashing for the memcached client.

Real "distributed way to write data" memcached clients (§VI.A quotes
the feature) shard with *ketama*: each server contributes many points
on a hash continuum and a key maps to the first point clockwise.  This
gives the baseline the same remap-resistance story Sedna's virtual
nodes give the server side — and lets the tests contrast the two
designs (client-side fixed continuum vs server-side reassignable
vnodes).

Implementation: 64-bit FNV-1a of ``"<server>#<i>"`` for ``i`` in
``points_per_server``, sorted continuum, binary-search lookup.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from ..storage.hashtable import fnv1a

__all__ = ["KetamaRing"]

_MASK = (1 << 64) - 1


def _mix(h: int) -> int:
    """splitmix64 finalizer: FNV of short similar strings clusters, so
    every hash gets an avalanche pass (real ketama uses MD5)."""
    h = (h + 0x9E3779B97F4A7C15) & _MASK
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK
    return h ^ (h >> 31)


class KetamaRing:
    """A weighted consistent-hash continuum over server names."""

    def __init__(self, servers: Iterable[str], points_per_server: int = 100):
        self.points_per_server = points_per_server
        self._points: list[tuple[int, str]] = []
        self._servers: set[str] = set()
        for server in servers:
            self.add_server(server)

    def add_server(self, server: str) -> None:
        """Add a server's points to the continuum."""
        if server in self._servers:
            return
        self._servers.add(server)
        for i in range(self.points_per_server):
            point = _mix(fnv1a(f"{server}#{i}".encode()))
            self._points.append((point, server))
        self._points.sort()

    def remove_server(self, server: str) -> None:
        """Remove a server (its keys remap to clockwise successors)."""
        if server not in self._servers:
            return
        self._servers.discard(server)
        self._points = [(p, s) for p, s in self._points if s != server]

    @property
    def servers(self) -> set[str]:
        """Current member set."""
        return set(self._servers)

    def node_for(self, key: bytes, offset: int = 0) -> str:
        """The server owning ``key``.

        ``offset`` > 0 walks clockwise to the next *distinct* servers —
        used for the paper's N-copy writes so copies land on different
        machines.
        """
        if not self._points:
            raise ValueError("empty ring")
        h = _mix(fnv1a(key))
        idx = bisect.bisect_right(self._points, (h, chr(0x10FFFF)))
        seen: list[str] = []
        for step in range(len(self._points)):
            point_server = self._points[(idx + step) % len(self._points)][1]
            if point_server not in seen:
                seen.append(point_server)
                if len(seen) > offset:
                    return seen[offset]
        return seen[-1]

    def distribution(self, keys: Iterable[bytes]) -> dict[str, int]:
        """Key counts per server (balance diagnostics)."""
        counts: dict[str, int] = {s: 0 for s in sorted(self._servers)}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
