"""Wire-faithful memcached: the text protocol over the simulated network.

:class:`MemcachedServer` (in :mod:`repro.baselines.memcached`) speaks
the structured RPC layer for benchmark convenience;
:class:`WireMemcachedServer` here speaks the *actual byte protocol*
through :class:`~repro.storage.protocol.ProtocolSession`, one session
per client endpoint, with responses streamed back as raw bytes.  The
matching :class:`WireMemcachedClient` builds command bytes, parses
``VALUE``/``STORED``/... replies, and tolerates arbitrary chunking.

This is the fidelity layer: anything that can drive real memcached can
conceptually drive this server, and the property test in
``tests/baselines/test_wire.py`` checks byte-level equivalence with the
direct engine.
"""

from __future__ import annotations

from typing import Optional

from ..net.latency import MEMCACHED_OP
from ..net.simulator import Event, Simulator
from ..net.transport import Message, Network
from ..storage.memstore import MemStore
from ..storage.protocol import ProtocolSession

__all__ = ["WireMemcachedServer", "WireMemcachedClient"]


class WireMemcachedServer:
    """A memcached server consuming raw byte frames.

    Each message payload is ``{"bytes": b"..."}``; the server feeds the
    sender's :class:`ProtocolSession` and returns whatever response
    bytes accumulate, after charging the per-command service time.
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 memory_limit: int = 64 << 20):
        self.sim = sim
        self.name = name
        self.store = MemStore(memory_limit=memory_limit,
                              clock=lambda: sim.now)
        self.endpoint = network.endpoint(name)
        self.endpoint.on_message(self._on_message)
        self.sessions: dict[str, ProtocolSession] = {}
        self._busy_until = 0.0

    def _session_for(self, client: str) -> ProtocolSession:
        session = self.sessions.get(client)
        if session is None or session.closed:
            session = ProtocolSession(self.store)
            self.sessions[client] = session
        return session

    def _on_message(self, msg: Message) -> None:
        data = msg.payload.get("bytes", b"")
        session = self._session_for(msg.src)
        commands_before = session.commands
        response = session.feed(data)
        executed = session.commands - commands_before
        if not response and not executed:
            return

        # One service-time slot per executed command, queued.
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + MEMCACHED_OP * max(1, executed)

        def reply() -> None:
            if response and self.endpoint.up:
                self.endpoint.send(msg.src, {"bytes": response})

        self.sim.schedule_callback(self._busy_until - self.sim.now, reply)

    def crash(self) -> None:
        """Take the server down; sessions are lost."""
        self.endpoint.crash()
        self.sessions.clear()


class WireMemcachedClient:
    """A byte-protocol client for one wire server.

    Responses are reassembled from the incoming byte stream; each
    helper is a process generator returning the parsed reply.
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 server: str, timeout: float = 2.0):
        self.sim = sim
        self.name = name
        self.server = server
        self.timeout = timeout
        self.endpoint = network.endpoint(name)
        self.endpoint.on_message(self._on_message)
        self._rx = b""
        self._waiter: Optional[Event] = None

    def _on_message(self, msg: Message) -> None:
        self._rx += msg.payload.get("bytes", b"")
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed(None)

    def _send(self, data: bytes) -> None:
        self.endpoint.send(self.server, {"bytes": data})

    def _read_until(self, terminators: tuple[bytes, ...]):
        """Wait until the rx buffer ends with one of ``terminators``."""
        deadline = self.sim.now + self.timeout
        while True:
            for term in terminators:
                if self._rx.endswith(term):
                    out, self._rx = self._rx, b""
                    return out
            if self.sim.now >= deadline:
                raise TimeoutError(f"no reply from {self.server}")
            waiter = self.sim.event()
            self._waiter = waiter
            timeout_ev = self.sim.timeout(max(0.0, deadline - self.sim.now))
            from ..net.simulator import AnyOf
            yield AnyOf(self.sim, (waiter, timeout_ev))
            if not waiter.triggered:
                self._waiter = None
                waiter.callbacks = None  # defuse

    _LINE_REPLIES = (b"STORED\r\n", b"NOT_STORED\r\n", b"EXISTS\r\n",
                     b"NOT_FOUND\r\n", b"DELETED\r\n", b"TOUCHED\r\n",
                     b"OK\r\n", b"END\r\n", b"ERROR\r\n")

    def set(self, key: bytes, value: bytes, flags: int = 0,
            exptime: int = 0):
        """``set`` command; returns the reply line (e.g. b"STORED")."""
        self._send(b"set %s %d %d %d\r\n%s\r\n"
                   % (key, flags, exptime, len(value), value))
        reply = yield from self._read_until(self._LINE_REPLIES)
        return reply.strip()

    def get(self, key: bytes):
        """``get``; returns the value bytes or None on miss."""
        self._send(b"get %s\r\n" % key)
        reply = yield from self._read_until((b"END\r\n",))
        if reply == b"END\r\n":
            return None
        header, rest = reply.split(b"\r\n", 1)
        _value, _key, _flags, nbytes = header.split(b" ")
        return rest[:int(nbytes)]

    def delete(self, key: bytes):
        """``delete``; returns the reply line."""
        self._send(b"delete %s\r\n" % key)
        reply = yield from self._read_until(self._LINE_REPLIES)
        return reply.strip()

    def incr(self, key: bytes, delta: int = 1):
        """``incr``; returns the new value or None when missing."""
        self._send(b"incr %s %d\r\n" % (key, delta))
        reply = yield from self._read_until((b"\r\n",))
        reply = reply.strip()
        if reply == b"NOT_FOUND":
            return None
        return int(reply)

    def stats(self):
        """``stats``; returns the stat dict."""
        self._send(b"stats\r\n")
        reply = yield from self._read_until((b"END\r\n",))
        out = {}
        for line in reply.split(b"\r\n"):
            if line.startswith(b"STAT "):
                _stat, name, value = line.split(b" ", 2)
                out[name.decode()] = value.decode()
        return out

    def raw(self, data: bytes, terminators: tuple[bytes, ...] = None):
        """Send raw bytes; wait for a terminator (protocol testing)."""
        self._send(data)
        reply = yield from self._read_until(
            terminators or self._LINE_REPLIES + (b"\r\n",))
        return reply
