"""Chord-style multi-hop lookup — the routing Sedna avoids (§VII).

"to meet the stringent speed requirements of realtime applications, we
avoid routing requests through multiple nodes like Chord use ...
Sedna uses a zero-hop DHT."  To measure what is being avoided, this
module implements the Chord lookup over the simulated network: nodes
own points on a 2^m id ring, each keeps a finger table, and a lookup
hops greedily until it reaches the key's successor.

Only the *routing* is Chord; once the owner is found the same storage
op runs — so the ablation isolates pure routing latency
(``benchmarks/test_ablation_routing.py``).
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.latency import REQUEST_HANDLING
from ..net.rpc import RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Simulator
from ..net.transport import Network
from ..storage.hashtable import fnv1a
from ..storage.memstore import MemStore

__all__ = ["ChordRing", "ChordNode", "ChordClient"]

M_BITS = 32
_SPACE = 1 << M_BITS


def chord_id(name_or_key: bytes) -> int:
    """Position on the 2^m identifier circle."""
    return fnv1a(name_or_key) % _SPACE


def _in_halfopen(x: int, a: int, b: int) -> bool:
    """x in (a, b] on the circle."""
    if a < b:
        return a < x <= b
    return x > a or x <= b


class ChordRing:
    """Static ring construction: ids, successors, finger tables.

    The paper's comparison is about steady-state routing cost, so we
    build the (correct) finger tables directly instead of simulating
    Chord's stabilization protocol.
    """

    def __init__(self, names: list[str]):
        if not names:
            raise ValueError("empty ring")
        self.ids = sorted((chord_id(n.encode()), n) for n in names)

    def successor_of(self, point: int) -> str:
        """The node owning id ``point`` (first node clockwise)."""
        for node_id, name in self.ids:
            if node_id >= point:
                return name
        return self.ids[0][1]

    def finger_table(self, name: str) -> list[str]:
        """The m-entry finger table for ``name``."""
        my_id = chord_id(name.encode())
        return [self.successor_of((my_id + (1 << k)) % _SPACE)
                for k in range(M_BITS)]

    def owner_of_key(self, key: bytes) -> str:
        """The node responsible for ``key``."""
        return self.successor_of(chord_id(key))


class ChordNode:
    """One Chord participant: finger-table routing + a MemStore."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 ring: ChordRing):
        self.sim = sim
        self.name = name
        self.ring = ring
        self.node_id = chord_id(name.encode())
        self.fingers = ring.finger_table(name)
        self.store = MemStore(memory_limit=64 << 20, clock=lambda: sim.now)
        self.rpc = RpcNode(network, name, service_time=REQUEST_HANDLING)
        self.rpc.register("chord.lookup", self._h_lookup)
        self.rpc.register("chord.get", self._h_get)
        self.rpc.register("chord.set", self._h_set)
        self.lookups_forwarded = 0

    def _closest_preceding(self, target: int) -> Optional[str]:
        for finger in reversed(self.fingers):
            fid = chord_id(finger.encode())
            if finger != self.name and _in_halfopen(
                    fid, self.node_id, (target - 1) % _SPACE):
                return finger
        return None

    def _owns(self, target: int) -> bool:
        return self.ring.successor_of(target) == self.name

    def _h_lookup(self, src: str, args: Any):
        """Resolve the owner of an id, hop by hop.

        Returns ``{"owner": name, "hops": n}`` — the recursive Chord
        lookup, each hop one real network round trip.
        """
        target = args["target"]
        hops = args.get("hops", 0)
        if self._owns(target):
            return {"owner": self.name, "hops": hops}
        nxt = self._closest_preceding(target)
        if nxt is None:
            nxt = self.fingers[0]
        self.lookups_forwarded += 1
        return self.rpc.call_async(nxt, "chord.lookup",
                                   {"target": target, "hops": hops + 1})

    def _h_get(self, src: str, args: Any):
        return {"value": self.store.get(args["key"])}

    def _h_set(self, src: str, args: Any):
        return self.store.set(args["key"], args["value"])


class ChordClient:
    """A client that resolves owners through the hop chain, then talks
    to the owner directly (standard Chord usage)."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 entry_node: str, timeout: float = 5.0):
        self.sim = sim
        self.name = name
        self.entry = entry_node
        self.timeout = timeout
        self.rpc = RpcNode(network, name)
        self.lookup_hops: list[int] = []
        self.op_latencies: list[float] = []

    def _resolve(self, key: bytes):
        result = yield from self.rpc.call(
            self.entry, "chord.lookup",
            {"target": chord_id(key)}, timeout=self.timeout)
        self.lookup_hops.append(result["hops"])
        return result["owner"]

    def set(self, key: bytes, value: bytes):
        """Lookup then store."""
        t0 = self.sim.now
        owner = yield from self._resolve(key)
        reply = yield from self.rpc.call(owner, "chord.set",
                                         {"key": key, "value": value},
                                         timeout=self.timeout)
        self.op_latencies.append(self.sim.now - t0)
        return reply

    def get(self, key: bytes):
        """Lookup then read."""
        t0 = self.sim.now
        owner = yield from self._resolve(key)
        reply = yield from self.rpc.call(owner, "chord.get", {"key": key},
                                         timeout=self.timeout)
        self.op_latencies.append(self.sim.now - t0)
        return reply["value"]
