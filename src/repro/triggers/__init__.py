"""Trigger subsystem: Sedna's realtime programming model (§IV).

Monitors on keys/tables/datasets, filters with old/new semantics,
actions composed into jobs, the Dirty-column scanners, and the
ripple-suppressing flow control.
"""

from .api import (Action, DataHooks, Filter, Job, Result, TriggerInput,
                  TriggerOutput)
from .flow import FlowControl
from .runtime import TriggerRuntime

__all__ = [
    "Action", "DataHooks", "Filter", "Job", "Result", "TriggerInput",
    "TriggerOutput",
    "FlowControl",
    "TriggerRuntime",
]
