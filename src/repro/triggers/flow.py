"""Flow control: suppressing the ripple effect (§IV.B).

Circular trigger topologies (Fig. 4 right: A → C → A/D → C → ...)
would double the activation frequency each round and "finally flood the
whole cluster".  Sedna suppresses this with a default *trigger
interval* per application: within the interval, further changes to the
same (job, key) are coalesced — "it would be safe to discard them as
the most fresh data matters most".

:class:`FlowControl` implements exactly that token-per-(job, key)
rate limit: the first event fires immediately; events arriving during
the cool-down replace the pending payload (freshest wins) and fire once
at the window boundary.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.simulator import Simulator

__all__ = ["FlowControl"]


class FlowControl:
    """Per-(job, key) trigger-interval coalescing."""

    def __init__(self, sim: Simulator, default_interval: float):
        self.sim = sim
        self.default_interval = default_interval
        # (job_id, key) -> last fire time
        self._last_fire: dict[tuple[str, str], float] = {}
        # (job_id, key) -> freshest pending payload
        self._pending: dict[tuple[str, str], Any] = {}
        # (job_id, key) -> a deferred flush is scheduled
        self._scheduled: set[tuple[str, str]] = set()
        self.fired_immediately = 0
        self.coalesced = 0

    def interval_for(self, job) -> float:
        """The job's interval, falling back to the application default."""
        if getattr(job, "trigger_interval", None) is not None:
            return job.trigger_interval
        return self.default_interval

    def offer(self, job, key: str, payload: Any,
              fire: Callable[[str, Any], None]) -> None:
        """Submit one change event.

        ``fire(key, payload)`` runs now when the (job, key) token is
        available, otherwise once at the end of the cool-down with the
        freshest payload seen meanwhile.
        """
        token = (job.job_id, key)
        interval = self.interval_for(job)
        now = self.sim.now
        last = self._last_fire.get(token)
        if last is None or now - last >= interval:
            if token not in self._scheduled:
                self._last_fire[token] = now
                self.fired_immediately += 1
                fire(key, payload)
                return
        # Cool-down (or a flush already queued): coalesce.
        self.coalesced += 1
        job.suppressed += 1
        self._pending[token] = payload
        if token in self._scheduled:
            return
        self._scheduled.add(token)
        base = self._last_fire.get(token, now)
        delay = max(0.0, base + interval - now)

        def flush() -> None:
            self._scheduled.discard(token)
            pending = self._pending.pop(token, None)
            if pending is None:
                return
            self._last_fire[token] = self.sim.now
            fire(key, pending)

        self.sim.schedule_callback(delay, flush)

    def forget_job(self, job_id: str) -> None:
        """Drop all state for a finished job."""
        for table in (self._last_fire, self._pending):
            for token in [t for t in table if t[0] == job_id]:
                del table[token]
        self._scheduled = {t for t in self._scheduled if t[0] != job_id}
