"""The trigger programming API of §IV (the Java Listing 1, in Python).

The nouns match the paper one-to-one:

* :class:`Action` — user code run when a trigger fires; override
  :meth:`Action.action`, which receives the key, an iterator over the
  values sharing that key, and a :class:`Result` to write outputs
  through ("Result provides a safe way for programmers to write
  processing results into distributed storage system paralleled").
* :class:`Filter` — the assert function with four arguments, "two for
  the new data, other two for the old data", used e.g. for the stop
  condition of iterative tasks.
* :class:`DataHooks` — what to monitor: a single key-value pair, a
  Table, or a whole Dataset (§IV.C).
* :class:`TriggerInput` / :class:`TriggerOutput` — hooks+filter, and
  the destination table.
* :class:`Job` — glues an Action class with input and output
  (``set_action_class``), then ``schedule(timeout)``.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional, Type

from ..core.types import DEFAULT_DATASET, DEFAULT_TABLE, FullKey

__all__ = ["Action", "Filter", "DataHooks", "TriggerInput", "TriggerOutput",
           "Result", "Job"]


class Action:
    """Base class for trigger actions (paper: ``extends Action<...>``).

    Subclasses override :meth:`action`; it runs on the storage node
    whose scanner detected the change and must be quick and idempotent
    — the flow-control layer may coalesce several updates into one
    activation, delivering only the freshest value (§IV.B).
    """

    def action(self, key: FullKey, values: Iterator[Any],
               result: "Result") -> None:
        """Process one fired key.

        Parameters
        ----------
        key:
            The key whose data changed.
        values:
            Iterator over the values currently sharing that key (the
            whole value list for ``write_all`` data, a single element
            for ``write_latest`` data).
        result:
            Sink for output writes.
        """
        raise NotImplementedError


class Filter:
    """Base class for trigger filters (paper: ``extends Filter<...>``).

    "the assert function will be called on each key-value pairs where
    programmers set hooks on ... so the assert function should be as
    simple as possible" (§IV.D).
    """

    def check(self, old_key: Optional[FullKey], old_value: Any,
              new_key: FullKey, new_value: Any) -> bool:
        """Return True to run the action, False to drop the event.

        ``old_key``/``old_value`` are None on the first observation of
        a key — the paper passes old and new precisely so iterative
        tasks can implement their stop condition by comparing them.
        """
        return True

    # The paper names this method `assert`; that is reserved in Python.
    assert_ = check


class PassFilter(Filter):
    """The implicit always-true filter."""


class DataHooks:
    """What a trigger monitors: a pair, a Table, or a Dataset (§IV.C)."""

    def __init__(self, dataset: str = DEFAULT_DATASET,
                 table: Optional[str] = None, key: Optional[str] = None):
        if key is not None and table is None:
            table = DEFAULT_TABLE
        self.dataset = dataset
        self.table = table
        self.key = key

    @property
    def granularity(self) -> str:
        """'key', 'table' or 'dataset'."""
        if self.key is not None:
            return "key"
        if self.table is not None:
            return "table"
        return "dataset"

    def matches(self, fk: FullKey) -> bool:
        """Does a changed key fall under this hook?"""
        if fk.dataset != self.dataset:
            return False
        if self.table is not None and fk.table != self.table:
            return False
        if self.key is not None and fk.key != self.key:
            return False
        return True

    def __repr__(self) -> str:
        return (f"DataHooks(dataset={self.dataset!r}, table={self.table!r}, "
                f"key={self.key!r})")


class TriggerInput:
    """Hooks plus filter — the ``i1 = TriggerInput(h1, f1)`` of Listing 1."""

    def __init__(self, hooks: DataHooks, filter: Optional[Filter] = None):
        self.hooks = hooks
        self.filter = filter if filter is not None else PassFilter()


class TriggerOutput:
    """Destination table for a job's results."""

    def __init__(self, dataset: str = DEFAULT_DATASET,
                 table: str = "output"):
        self.dataset = dataset
        self.table = table


class Result:
    """Write sink handed to actions.

    Writes are buffered and flushed by the runtime through the normal
    replicated write path once the action returns — failures never
    leave a half-applied batch visible mid-action.
    """

    def __init__(self, output: TriggerOutput):
        self.output = output
        self.writes: list[tuple[str, str, str, Any, str]] = []

    def emit(self, key: str, value: Any) -> None:
        """Write ``value`` under ``key`` in the job's output table."""
        self.writes.append((self.output.dataset, self.output.table, key,
                            value, "latest"))

    def write(self, key: str, value: Any, table: Optional[str] = None,
              dataset: Optional[str] = None, mode: str = "latest") -> None:
        """Write to an arbitrary table (chained trigger pipelines)."""
        self.writes.append((dataset or self.output.dataset,
                            table or self.output.table, key, value, mode))


_job_ids = itertools.count(1)


class Job:
    """A trigger job: action + input + output + schedule state."""

    def __init__(self, name: Optional[str] = None):
        self.job_id = f"job-{next(_job_ids)}"
        self.name = name or self.job_id
        self.action: Optional[Action] = None
        self.input: Optional[TriggerInput] = None
        self.output: Optional[TriggerOutput] = None
        self.trigger_interval: Optional[float] = None  # None = config default
        self.deadline: Optional[float] = None
        self.runtime = None  # set by TriggerRuntime.submit
        # Stats.
        self.activations = 0
        self.filtered = 0
        self.suppressed = 0
        self.errors = 0

    # -- Listing-1 style configuration -------------------------------------
    def set_action_class(self, action_cls: Type[Action],
                         trigger_input: TriggerInput,
                         trigger_output: TriggerOutput) -> "Job":
        """``job.setActionClass(MyAction.class, i1, o1)`` equivalent."""
        self.action = action_cls()
        self.input = trigger_input
        self.output = trigger_output
        return self

    # -- fluent style ------------------------------------------------------
    def with_action(self, action: Action) -> "Job":
        """Attach an action instance."""
        self.action = action
        return self

    def monitor(self, hooks: DataHooks,
                filter: Optional[Filter] = None) -> "Job":
        """Attach hooks (and optionally a filter)."""
        self.input = TriggerInput(hooks, filter)
        return self

    def output_to(self, output: TriggerOutput) -> "Job":
        """Attach the output table."""
        self.output = output
        return self

    def every(self, interval: float) -> "Job":
        """Override the default trigger interval (flow control, §IV.B)."""
        self.trigger_interval = interval
        return self

    # -- scheduling ---------------------------------------------------------
    def schedule(self, timeout: Optional[float] = None) -> "Job":
        """Start the job on its runtime.

        "Programmers should give a job a timeout measurement to avoid
        infinite execution" (§IV.D) — after ``timeout`` simulated
        seconds the job stops firing.
        """
        if self.runtime is None:
            raise RuntimeError(
                "job not submitted to a TriggerRuntime; call runtime.submit")
        self.runtime._schedule_job(self, timeout)
        return self

    def expired(self, now: float) -> bool:
        """Whether the job's timeout has passed."""
        return self.deadline is not None and now >= self.deadline

    def validate(self) -> None:
        """Raise unless action/input/output are all configured."""
        if self.action is None:
            raise ValueError(f"{self.name}: no action configured")
        if self.input is None:
            raise ValueError(f"{self.name}: no input configured")
        if self.output is None:
            raise ValueError(f"{self.name}: no output configured")
