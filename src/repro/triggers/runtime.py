"""The trigger runtime: Dirty-column scanners + job dispatch (§IV.C–D).

"Once Sedna started, it will start several threads according to the
data size to scan the Dirty and Monitored fields sequentially.
Whenever Dirty flag was found, that data piece will be sent to
corresponding filters according to the monitor fields of that data
piece."

Mechanics here:

* every real node runs ``scan_threads`` scanner processes over its own
  :class:`~repro.storage.versioned.VersionedStore`;
* a change fires only on the vnode's *primary* replica, so one logical
  write activates a trigger exactly once despite N physical copies;
* matched events pass the job's :class:`~repro.triggers.api.Filter`
  (with old and new pair), then the flow-control window, then the
  :class:`~repro.triggers.api.Action`;
* the action's :class:`~repro.triggers.api.Result` writes flush
  through a :class:`~repro.core.client.SednaClient` pinned to the
  scanning node — output writes are replicated data like any other,
  which is what lets triggers chain into pipelines (Fig. 4 left).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.client import SednaClient
from ..core.cluster import SednaCluster
from ..core.node import SednaNode
from ..core.types import FullKey
from ..storage.versioned import Row, ValueElement
from .api import Job
from .flow import FlowControl

__all__ = ["TriggerRuntime"]


class TriggerRuntime:
    """Cluster-wide trigger coordinator.

    One instance per cluster::

        runtime = TriggerRuntime(cluster)
        runtime.start()
        job = runtime.submit(
            Job("indexer").with_action(IndexAction())
                          .monitor(DataHooks(dataset="web", table="pages"))
                          .output_to(TriggerOutput("web", "index")))
        job.schedule(timeout=60.0)
    """

    def __init__(self, cluster: SednaCluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.flow = FlowControl(self.sim, self.config.trigger_interval)
        self.jobs: dict[str, Job] = {}
        # Per-job memory of the last value seen per key (for the
        # old/new filter arguments, §IV.D).
        self._last_seen: dict[tuple[str, str], ValueElement] = {}
        self._clients: dict[str, SednaClient] = {}
        self._started = False
        # Stats.
        self.events_scanned = 0
        self.activations = 0
        self.action_errors = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the scanner processes on every running node."""
        if self._started:
            return
        self._started = True
        for name, node in self.cluster.nodes.items():
            self._clients[name] = SednaClient(
                self.sim, self.cluster.network, f"{name}-triggers",
                [name], self.config, pinned=name)
            for tid in range(self.config.scan_threads):
                self.sim.process(self._scanner(node, tid),
                                 name=f"{name}-scan{tid}")

    def submit(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Register a job; optionally schedule it immediately."""
        job.validate()
        job.runtime = self
        self.jobs[job.job_id] = job
        if timeout is not None:
            job.schedule(timeout)
        self._register_monitors(job)
        return job

    def _schedule_job(self, job: Job, timeout: Optional[float]) -> None:
        if timeout is not None:
            job.deadline = self.sim.now + timeout

    def cancel(self, job: Job) -> None:
        """Remove a job and its flow-control state."""
        self.jobs.pop(job.job_id, None)
        self.flow.forget_job(job.job_id)

    def _register_monitors(self, job: Job) -> None:
        """Write the job into the Monitors column of exact-key hooks.

        Table/dataset hooks are prefix rules kept in the runtime (one
        cannot pre-annotate rows that do not exist yet)."""
        hooks = job.input.hooks
        if hooks.granularity != "key":
            return
        encoded = FullKey(dataset=hooks.dataset, table=hooks.table,
                          key=hooks.key).encoded()
        for node in self.cluster.nodes.values():
            node.store.register_monitor(encoded, job.job_id)

    # -- scanning -------------------------------------------------------------
    def _scanner(self, node: SednaNode, tid: int):
        batch = 64
        scan_timer = self.sim.recurring(self.config.scan_interval)
        while True:
            yield scan_timer.tick()
            if not self._started:
                return
            if not (node.running and node.rpc.endpoint.up):
                continue
            for key, row in node.store.drain_dirty(limit=batch):
                self._on_change(node, key, row)

    def _is_primary(self, node: SednaNode, encoded_key: str) -> bool:
        vnode = node.cache.ring.vnode_of(encoded_key)
        replicas = node.cache.ring.replicas_for(vnode, 1)
        return bool(replicas) and replicas[0] == node.name

    def _on_change(self, node: SednaNode, encoded_key: str, row: Row) -> None:
        """Route one dirty row through monitors, filters, flow control."""
        if not self._is_primary(node, encoded_key):
            return  # replicas stay silent; the primary fires the trigger
        self.events_scanned += 1
        fk = FullKey.decode(encoded_key)
        latest = row.latest()
        if latest is None:
            return
        elements = list(row.elements)
        for job in list(self.jobs.values()):
            if job.expired(self.sim.now):
                continue
            explicit = job.job_id in row.monitors
            if not (explicit or job.input.hooks.matches(fk)):
                continue
            token = (job.job_id, encoded_key)
            old = self._last_seen.get(token)
            self._last_seen[token] = latest
            try:
                passed = job.input.filter.check(
                    fk if old is not None else None,
                    old.value if old is not None else None,
                    fk, latest.value)
            except Exception:
                job.errors += 1
                continue
            if not passed:
                job.filtered += 1
                continue
            payload = (node.name, fk, elements)
            self.flow.offer(job, encoded_key, payload,
                            lambda key, p, job=job: self._activate(job, p))

    # -- activation --------------------------------------------------------
    def _activate(self, job: Job, payload: Any) -> None:
        if job.expired(self.sim.now):
            return
        node_name, fk, elements = payload
        self.sim.process(self._run_action(job, node_name, fk, elements),
                         name=f"{job.name}-act")

    def _run_action(self, job: Job, node_name: str, fk: FullKey,
                    elements: list[ValueElement]):
        from .api import Result  # local import to avoid a cycle
        result = Result(job.output)
        ordered = sorted(elements, key=lambda e: -e.timestamp)
        values = iter([e.value for e in ordered])
        try:
            job.action.action(fk, values, result)
        except Exception:
            job.errors += 1
            self.action_errors += 1
            return
        job.activations += 1
        self.activations += 1
        client = self._clients.get(node_name)
        if client is None or not client.rpc.endpoint.up:
            # Scanning node died mid-flight: use any live node's client.
            for candidate in self._clients.values():
                if candidate.rpc.endpoint.up:
                    client = candidate
                    break
            else:
                return
        for dataset, table, key, value, mode in result.writes:
            if mode == "all":
                yield from client.write_all(key, value, table=table,
                                            dataset=dataset)
            else:
                yield from client.write_latest(key, value, table=table,
                                               dataset=dataset)

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate trigger statistics (used by the Fig. 4 bench)."""
        return {
            "jobs": {job.name: {"activations": job.activations,
                                "filtered": job.filtered,
                                "suppressed": job.suppressed,
                                "errors": job.errors}
                     for job in self.jobs.values()},
            "events_scanned": self.events_scanned,
            "activations": self.activations,
            "coalesced": self.flow.coalesced,
            "action_errors": self.action_errors,
        }
