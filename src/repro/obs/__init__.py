"""Observability subsystem: metrics, tracing, and the diagnosis pipeline.

The paper's load balancer runs on measured per-vnode read/write
frequency (§V); this package makes that measurement — and the rest of
the data plane — first-class and inspectable:

* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed
  ``(node, vnode, name)`` with deterministic JSON/text snapshots, and
  the always-on :class:`VnodeStatsFeed` behind the imbalance table.
* :mod:`repro.obs.trace` — request-scoped span trees propagated
  through RPC envelopes and the kernel event graph.
* :mod:`repro.obs.timeseries` — sim-clock sampling of registry
  snapshots into bounded per-series rings (rates, sparklines).
* :mod:`repro.obs.critical` — critical-path/phase attribution and
  folded-stack flame output over exported traces.
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn-rate
  alerts evaluated over the time-series rings.
* :mod:`repro.obs.recorder` — the flight recorder the chaos runner
  dumps automatically when an invariant fails.
* ``python -m repro.obs`` — run a chaos schedule with observability
  on; dump, verify, and diff snapshots, timelines, series, critical
  paths, flames and SLO reports.

:class:`Observability` is the bundle components thread around: build
one, pass it to :class:`~repro.core.cluster.SednaCluster` (and through
it to nodes, clients, stores, caches, and ZK sessions).  ``None``
everywhere means "off" and costs a single ``is None`` check (tracing)
or a shared no-op handle (metrics).  The diagnosis-pipeline stages are
opt-in on top: ``timeseries=True`` samples, ``slos=[...]`` evaluates,
``flight=True`` records — each implies what it needs (SLOs and the
flight recorder both ride the sampler).
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import (DISABLED, MetricsRegistry, VnodeStatsFeed,
                      diff_snapshots)
from .trace import Span, SpanTracer, format_timeline

__all__ = ["Observability", "MetricsRegistry", "VnodeStatsFeed",
           "SpanTracer", "Span", "format_timeline", "diff_snapshots",
           "DISABLED"]


class Observability:
    """Shared metrics registry + optional tracer + diagnosis pipeline.

    Parameters beyond the PR-4 surface (all default-off, so existing
    callers are unchanged):

    timeseries:
        Sample the registry into bounded rings every ``ts_interval``
        simulated seconds once :meth:`start` is called.
    slos:
        A list of :class:`~repro.obs.slo.SloSpec` to evaluate on every
        sample (implies ``timeseries``).
    flight:
        Keep a :class:`~repro.obs.recorder.FlightRecorder` fed with
        recent spans, metric deltas and packets (implies
        ``timeseries``; the span feed needs ``tracing``).
    """

    def __init__(self, metrics: bool = True, tracing: bool = False,
                 max_series: int = 4096, max_spans: int = 200_000,
                 timeseries: bool = False, ts_interval: float = 0.25,
                 ts_capacity: int = 240,
                 slos: Optional[list] = None,
                 flight: bool = False):
        self.metrics = MetricsRegistry(enabled=metrics,
                                       max_series=max_series)
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(max_spans=max_spans) if tracing else None)
        self.timeseries: Optional[Any] = None
        self.slo: Optional[Any] = None
        self.flight: Optional[Any] = None
        if timeseries or slos is not None or flight:
            # Local imports: the base bundle stays importable without
            # paying for pipeline modules it does not use.
            from .timeseries import TimeSeriesRecorder
            self.timeseries = TimeSeriesRecorder(
                self.metrics, interval=ts_interval, capacity=ts_capacity)
        if slos is not None:
            from .slo import SloEvaluator
            self.slo = SloEvaluator(self.timeseries, list(slos))
        if flight:
            from .recorder import FlightRecorder
            self.flight = FlightRecorder()
            self.flight.observe_timeseries(self.timeseries)
            if self.tracer is not None:
                self.flight.observe_tracer(self.tracer)

    def attach(self, sim: Any) -> "Observability":
        """Install the tracer (if any) on ``sim``; idempotent."""
        if self.tracer is not None and sim.tracer is not self.tracer:
            self.tracer.attach(sim)
        return self

    def start(self, sim: Any, network: Any = None) -> "Observability":
        """Start the sampling loop and the flight recorder's tap.

        Call once the cluster exists (the sampler rides the event
        queue; the packet feed needs the network).  A bundle without
        pipeline stages is a no-op here.
        """
        if self.timeseries is not None:
            self.timeseries.start(sim)
        if self.flight is not None and network is not None:
            self.flight.observe_network(network)
        return self

    def detach(self) -> None:
        if self.tracer is not None:
            self.tracer.detach()
        if self.timeseries is not None:
            self.timeseries.stop()
        if self.flight is not None:
            self.flight.detach()

    def snapshot(self) -> dict:
        """Metrics snapshot plus pipeline summaries (when present)."""
        snap = self.metrics.snapshot()
        if self.tracer is not None:
            snap["tracing"] = {
                "traces": len(self.tracer.traces),
                "spans": self.tracer.span_count,
                "dropped_spans": self.tracer.dropped_spans,
            }
        if self.timeseries is not None:
            snap["timeseries"] = {
                "samples": self.timeseries.samples_taken,
                "series": len(self.timeseries.tracks),
                "interval": self.timeseries.interval,
            }
        if self.slo is not None:
            snap["slo"] = {
                "specs": len(self.slo.specs),
                "alerts": len(self.slo.alerts),
                "firing": self.slo.firing(),
            }
        return snap
