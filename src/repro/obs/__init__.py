"""Observability subsystem: metrics registry + request-scoped tracing.

The paper's load balancer runs on measured per-vnode read/write
frequency (§V); this package makes that measurement — and the rest of
the data plane — first-class and inspectable:

* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed
  ``(node, vnode, name)`` with deterministic JSON/text snapshots, and
  the always-on :class:`VnodeStatsFeed` behind the imbalance table.
* :mod:`repro.obs.trace` — request-scoped span trees propagated
  through RPC envelopes and the kernel event graph.
* ``python -m repro.obs`` — run a chaos schedule with observability
  on; dump, verify, and diff snapshots and span timelines.

:class:`Observability` is the bundle components thread around: build
one, pass it to :class:`~repro.core.cluster.SednaCluster` (and through
it to nodes, clients, stores, caches, and ZK sessions).  ``None``
everywhere means "off" and costs a single ``is None`` check (tracing)
or a shared no-op handle (metrics).
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import (DISABLED, MetricsRegistry, VnodeStatsFeed,
                      diff_snapshots)
from .trace import Span, SpanTracer, format_timeline

__all__ = ["Observability", "MetricsRegistry", "VnodeStatsFeed",
           "SpanTracer", "Span", "format_timeline", "diff_snapshots",
           "DISABLED"]


class Observability:
    """Shared metrics registry + optional span tracer for one cluster."""

    def __init__(self, metrics: bool = True, tracing: bool = False,
                 max_series: int = 4096, max_spans: int = 200_000):
        self.metrics = MetricsRegistry(enabled=metrics,
                                       max_series=max_series)
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(max_spans=max_spans) if tracing else None)

    def attach(self, sim: Any) -> "Observability":
        """Install the tracer (if any) on ``sim``; idempotent."""
        if self.tracer is not None and sim.tracer is not self.tracer:
            self.tracer.attach(sim)
        return self

    def detach(self) -> None:
        if self.tracer is not None:
            self.tracer.detach()

    def snapshot(self) -> dict:
        """Metrics snapshot plus trace summary (when tracing)."""
        snap = self.metrics.snapshot()
        if self.tracer is not None:
            snap["tracing"] = {
                "traces": len(self.tracer.traces),
                "spans": self.tracer.span_count,
                "dropped_spans": self.tracer.dropped_spans,
            }
        return snap
