"""Declarative SLOs with multi-window burn-rate alerting.

An SLO here is the standard error-budget formulation: over a
compliance window, at least ``objective`` of events must be *good*.
Three spec kinds cover the registry's series vocabulary:

* ``latency`` — good events are observations at or below
  ``threshold`` seconds in a histogram series; the good fraction in a
  window is interpolated from the windowed bucket deltas
  (:func:`~repro.obs.metrics.bucket_fraction_le`), so percentile
  targets work without storing raw samples.
* ``error_rate`` — good events are ``total_series`` increments that
  did not also increment ``series`` (the bad-event counter).
* ``freshness`` — good samples are those where the gauge stays at or
  below ``threshold`` (staleness lag, heat spread, queue depth …).

Alerting follows the multi-window burn-rate recipe (Google SRE
workbook ch. 5): the burn rate is ``bad_fraction / (1 - objective)``
— 1.0 means exactly spending the budget over the window — and an
alert fires only when **both** a long and a short window exceed the
window's ``factor``.  The long window gives significance, the short
window makes the alert resolve promptly once the burn stops; two
window pairs (fast/slow) catch cliffs and slow bleeds respectively.

Evaluation is driven by :class:`~repro.obs.timeseries.
TimeSeriesRecorder` samples — the evaluator subscribes to
``on_sample`` and re-evaluates every spec each tick.  Alerts are
recorded as deterministic sim-timestamped :class:`SloAlert` events
(fire and resolve transitions only, no re-firing spam); byte-identical
across runs of one seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import bucket_fraction_le, bucket_quantile
from .timeseries import TimeSeriesRecorder

__all__ = ["BurnWindow", "SloSpec", "SloAlert", "SloEvaluator",
           "DEFAULT_WINDOWS", "default_slos", "SLO_SCHEMA"]

SLO_SCHEMA = "repro.obs.slo/1"


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) window pair with its burn-rate threshold.

    Both windows are simulated seconds; ``factor`` is the burn rate
    both must exceed for the alert to fire.
    """

    long: float
    short: float
    factor: float
    label: str

    def export(self) -> dict:
        return {"long_s": self.long, "short_s": self.short,
                "factor": self.factor, "label": self.label}


#: Default window pairs, scaled for chaos-run durations (seconds of
#: simulated time, not hours of wall clock): "fast" catches cliffs
#: within a couple of samples, "slow" catches sustained bleeds.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(long=2.0, short=0.5, factor=6.0, label="fast"),
    BurnWindow(long=6.0, short=1.5, factor=2.0, label="slow"),
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over registry series.

    ``series`` (and ``total_series`` for ``error_rate``) are fnmatch
    patterns over flat snapshot labels (``node0/coord.write.latency``);
    matching series are summed, so a cluster-wide SLO is one pattern
    with a ``*`` node part.
    """

    name: str
    kind: str                 # "latency" | "error_rate" | "freshness"
    objective: float          # target good fraction, e.g. 0.99
    series: str               # histogram / bad-counter / gauge pattern
    threshold: float = 0.0    # latency or freshness bound
    total_series: str = ""    # error_rate: total-event counter pattern
    windows: tuple = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate", "freshness"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1): {self.objective}")
        if self.kind == "error_rate" and not self.total_series:
            raise ValueError("error_rate SLO needs total_series")

    def export(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "objective": self.objective, "series": self.series,
                "threshold": self.threshold,
                "total_series": self.total_series,
                "windows": [w.export() for w in self.windows]}


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert transition (sim-timestamped, deterministic)."""

    time: float
    slo: str
    window: str          # BurnWindow label
    state: str           # "fire" | "resolve"
    burn_long: float
    burn_short: float

    def export(self) -> dict:
        return {"time": round(self.time, 9), "slo": self.slo,
                "window": self.window, "state": self.state,
                "burn_long": round(self.burn_long, 6),
                "burn_short": round(self.burn_short, 6)}

    def __str__(self) -> str:
        return (f"[{self.time:9.3f}s] {self.state.upper():7} {self.slo} "
                f"({self.window}: long={self.burn_long:.1f}x "
                f"short={self.burn_short:.1f}x)")


def default_slos() -> list[SloSpec]:
    """The chaos runner's stock objectives (``--slo``).

    Latency targets ride the coordinator histograms; availability
    rides the client failure counter against the end-to-end latency
    histograms (every completed op observes exactly one of those).
    """
    return [
        SloSpec(name="coord-read-50ms", kind="latency", objective=0.95,
                series="*/coord.read.latency", threshold=0.05),
        SloSpec(name="coord-write-50ms", kind="latency", objective=0.95,
                series="*/coord.write.latency", threshold=0.05),
        SloSpec(name="client-availability", kind="error_rate",
                objective=0.90, series="*/client.failures",
                total_series="*/client.*_seconds"),
    ]


class _WindowTotals:
    """bad/total accumulated over one window of samples."""

    __slots__ = ("bad", "total")

    def __init__(self) -> None:
        self.bad = 0.0
        self.total = 0.0

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total > 0 else 0.0


class SloEvaluator:
    """Evaluates specs on every time-series sample; records alerts.

    ``evaluator = SloEvaluator(recorder, specs)`` subscribes itself;
    after the run, ``alerts`` holds the fire/resolve transitions in
    sim-time order and :meth:`export` produces the JSON artifact.
    """

    def __init__(self, recorder: TimeSeriesRecorder,
                 specs: list[SloSpec]) -> None:
        self.recorder = recorder
        self.specs = list(specs)
        self.alerts: list[SloAlert] = []
        self._firing: dict[tuple[str, str], bool] = {}
        recorder.on_sample.append(self._on_sample)

    # -- windowed accounting ---------------------------------------------
    def _samples_for(self, seconds: float) -> int:
        return max(1, round(seconds / self.recorder.interval))

    def _totals(self, spec: SloSpec, samples: int) -> _WindowTotals:
        """bad/total events for ``spec`` over the last ``samples``."""
        rec = self.recorder
        out = _WindowTotals()
        if spec.kind == "latency":
            for label in rec.matching(spec.series):
                track = rec.tracks[label]
                if track.kind != "histogram":
                    continue
                window = rec.window(label, samples)
                counts = [sum(p[2][i] for p in window)
                          for i in range(len(track.bounds) + 1)]
                total = sum(counts)
                if total == 0:
                    continue
                good = bucket_fraction_le(track.bounds, counts,
                                          spec.threshold) * total
                out.total += total
                out.bad += total - good
        elif spec.kind == "error_rate":
            for label in rec.matching(spec.series):
                for point in rec.window(label, samples):
                    out.bad += point[0] if isinstance(point, tuple) \
                        else point
            for label in rec.matching(spec.total_series):
                for point in rec.window(label, samples):
                    out.total += point[0] if isinstance(point, tuple) \
                        else point
            out.total += out.bad  # failures don't observe the histograms
        else:  # freshness
            for label in rec.matching(spec.series):
                for level in rec.window(label, samples):
                    out.total += 1
                    if level > spec.threshold:
                        out.bad += 1
        return out

    def burn_rate(self, spec: SloSpec, seconds: float) -> float:
        """Error-budget burn over the trailing ``seconds`` window."""
        totals = self._totals(spec, self._samples_for(seconds))
        return totals.bad_fraction / (1.0 - spec.objective)

    # -- sampling hook ---------------------------------------------------
    def _on_sample(self, now: float, deltas: dict) -> None:
        for spec in self.specs:
            for window in spec.windows:
                burn_long = self.burn_rate(spec, window.long)
                burn_short = self.burn_rate(spec, window.short)
                firing = (burn_long > window.factor
                          and burn_short > window.factor)
                key = (spec.name, window.label)
                was = self._firing.get(key, False)
                if firing != was:
                    self._firing[key] = firing
                    self.alerts.append(SloAlert(
                        time=now, slo=spec.name, window=window.label,
                        state="fire" if firing else "resolve",
                        burn_long=burn_long, burn_short=burn_short))

    # -- reporting -------------------------------------------------------
    def firing(self) -> list[str]:
        """Sorted ``slo/window`` keys currently in the firing state."""
        return sorted(f"{name}/{window}"
                      for (name, window), on in self._firing.items()
                      if on)

    def status(self) -> dict:
        """Whole-buffer compliance per spec (deterministic)."""
        out = {}
        for spec in self.specs:
            totals = self._totals(spec, self.recorder.capacity)
            entry = {
                "kind": spec.kind,
                "objective": spec.objective,
                "events": round(totals.total, 6),
                "attainment": round(1.0 - totals.bad_fraction, 6),
                # Epsilon absorbs float error when attainment lands
                # exactly on the objective (0.9 vs 1 - 0.9).
                "met": totals.bad_fraction <= 1.0 - spec.objective + 1e-9,
            }
            if spec.kind == "latency":
                entry["percentile"] = self._percentile(spec)
            out[spec.name] = entry
        return out

    def _percentile(self, spec: SloSpec) -> Optional[float]:
        """Whole-buffer interpolated p(objective) for a latency spec."""
        rec = self.recorder
        counts: Optional[list[int]] = None
        bounds: tuple[float, ...] = ()
        for label in rec.matching(spec.series):
            track = rec.tracks[label]
            if track.kind != "histogram":
                continue
            window = rec.window(label)
            if counts is None:
                bounds = track.bounds
                counts = [0] * (len(bounds) + 1)
            if track.bounds != bounds:
                continue  # mismatched layouts cannot be merged
            for point in window:
                for i, d in enumerate(point[2]):
                    counts[i] += d
        if counts is None or sum(counts) == 0:
            return None
        return round(bucket_quantile(bounds, counts, spec.objective), 9)

    def export(self) -> dict:
        """JSON artifact: specs, alert log, final status."""
        return {
            "schema": SLO_SCHEMA,
            "specs": [spec.export() for spec in self.specs],
            "alerts": [alert.export() for alert in self.alerts],
            "firing": self.firing(),
            "status": self.status(),
        }

    def format_slo(self) -> str:
        """Text report (CLI ``slo`` subcommand)."""
        lines = [f"# {SLO_SCHEMA} specs={len(self.specs)} "
                 f"alerts={len(self.alerts)}"]
        status = self.status()
        for name, entry in status.items():
            verdict = "MET " if entry["met"] else "MISS"
            pct = ""
            if entry.get("percentile") is not None:
                pct = f" p{100 * entry['objective']:g}=" \
                      f"{1000 * entry['percentile']:.2f}ms"
            lines.append(
                f"{verdict} {name:<24} {entry['kind']:<10} "
                f"attainment={entry['attainment']:.4f} "
                f"target={entry['objective']:.4f} "
                f"events={entry['events']:g}{pct}")
        if self.alerts:
            lines.append("alerts:")
            lines.extend(f"  {alert}" for alert in self.alerts)
        else:
            lines.append("alerts: none")
        return "\n".join(lines)
