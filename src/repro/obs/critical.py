"""Critical-path and flame analysis over exported span traces.

A span timeline shows *what happened*; an operator debugging a slow
request wants *what the latency was spent on*.  This module consumes
:meth:`SpanTracer.export() <repro.obs.trace.SpanTracer.export>` (the
deterministic dict form, so it works on live tracers and on JSON dumps
alike) and answers three questions:

* :func:`critical_path` — which causal chain of spans determined the
  trace's end-to-end time (root → … → the span whose completion the
  trace waited on, ties broken by lowest span id);
* :func:`analyze_trace` / :func:`aggregate` — where that time went,
  attributed to phases and rolled up per operation kind;
* :func:`folded_stacks` — self-time flame output in Brendan Gregg's
  folded-stack format (``a;b;c <microseconds>``), ready for any
  flamegraph renderer.

Phase attribution rules (docs/protocols.md §19.2).  Walking the
critical path parent→child, each edge splits into:

* ``queue_wait`` — the serving endpoint's service-queue wait, carried
  as the child's ``queue`` tag (stamped by ``RpcNode._serve``);
* ``rpc_flight`` — the rest of the dispatch gap (request on the wire)
  plus, for non-quorum parents, the settle gap (reply on the wire);
* ``quorum_wait`` — the settle gap under a ``coord.*`` parent: time
  between the critical reply's handler finishing and the quorum
  settling at the coordinator (reply flight + waiting out R-th
  agreement);

and the path's terminal span contributes its full duration to its
own phase: ``storage`` for replica/data handlers, ``zk`` for
ZooKeeper handlers, ``serve`` for other RPC handlers, ``coord`` /
``client`` for coordinator and client spans that end the path.

Open spans (no ``end`` at export time) are treated as ending at the
trace's last recorded instant; a span whose parent was dropped by the
tracer's cap starts its own chain.  All outputs are deterministic:
sorted keys, microsecond-rounded integers in flame output.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["PHASES", "phase_of", "critical_path", "analyze_trace",
           "aggregate", "format_breakdown", "folded_stacks",
           "format_flame"]

#: Attribution buckets, in display order.
PHASES = ("client", "coord", "rpc_flight", "queue_wait", "quorum_wait",
          "storage", "zk", "serve")

#: RPC-method prefixes whose handlers run the storage plane.
_STORAGE_PREFIXES = ("rpc.replica.", "rpc.sedna.", "rpc.mc.",
                     "rpc.migrate.", "rpc.stats.")


def phase_of(name: str) -> str:
    """Terminal-span phase for a span name (see module docstring)."""
    for prefix in _STORAGE_PREFIXES:
        if name.startswith(prefix):
            return "storage"
    if name.startswith("rpc.zk."):
        return "zk"
    if name.startswith("rpc."):
        return "serve"
    if name.startswith("coord."):
        return "coord"
    return "client"


def _trace_end(spans: list[dict]) -> float:
    """Last recorded instant of a trace (open spans count their start)."""
    end = 0.0
    for span in spans:
        end = max(end, span["start"] if span["end"] is None else span["end"])
    return end


def _effective_end(span: dict, trace_end: float) -> float:
    """A span's end, with open spans pinned to the trace end."""
    return trace_end if span["end"] is None else span["end"]


def critical_path(spans: list[dict]) -> list[dict]:
    """The causal chain that determined the trace's end time.

    Walks top-down from the trace's root (the first recorded span):
    at each level it descends into the child whose completion the
    parent's own end waited on — the last-ending child that finished
    at or before the parent (ties: lowest span id, hence
    deterministic).  Children that outlive their parent are laggards
    the operation did *not* wait on (a quorum settles at the R-th
    reply; later replies are watched, not awaited) and never join the
    path.  Returned root-first.
    """
    if not spans:
        return []
    trace_end = _trace_end(spans)
    children: dict[Optional[int], list[dict]] = {}
    by_id = {span["span"]: span for span in spans}
    for span in spans:
        if span["parent"] in by_id:
            children.setdefault(span["parent"], []).append(span)
    cursor = spans[0]
    path = [cursor]
    while True:
        limit = _effective_end(cursor, trace_end)
        candidates = [k for k in children.get(cursor["span"], [])
                      if _effective_end(k, trace_end) <= limit]
        if not candidates:
            break
        cursor = max(candidates,
                     key=lambda s: (_effective_end(s, trace_end),
                                    -s["span"]))
        path.append(cursor)
    return path


def analyze_trace(trace: dict) -> dict:
    """Per-trace critical-path breakdown.

    ``trace`` is one entry of ``SpanTracer.export()["traces"]``.
    Returns ``{"name", "duration", "path": [span names], "phases":
    {phase: seconds}}``; phases not on the path are omitted.
    """
    spans = trace["spans"]
    path = critical_path(spans)
    if not path:
        return {"name": trace.get("name", ""), "duration": 0.0,
                "path": [], "phases": {}}
    trace_end = _trace_end(spans)
    root = path[0]
    duration = _effective_end(root, trace_end) - root["start"]
    phases: dict[str, float] = {}

    def credit(phase: str, amount: float) -> None:
        if amount > 0.0:
            phases[phase] = phases.get(phase, 0.0) + amount

    for parent, child in zip(path, path[1:]):
        queued = float(child.get("tags", {}).get("queue", 0.0))
        dispatch = child["start"] - parent["start"] - queued
        settle = (_effective_end(parent, trace_end)
                  - _effective_end(child, trace_end))
        credit("queue_wait", queued)
        credit("rpc_flight", dispatch)
        if parent["name"].startswith("coord."):
            credit("quorum_wait", settle)
        else:
            credit("rpc_flight", settle)
    leaf = path[-1]
    credit(phase_of(leaf["name"]),
           _effective_end(leaf, trace_end) - leaf["start"])
    return {"name": trace.get("name", root["name"]),
            "duration": duration,
            "path": [span["name"] for span in path],
            "phases": {k: round(v, 9) for k, v in sorted(phases.items())}}


def aggregate(export: dict) -> dict:
    """Roll :func:`analyze_trace` up per operation kind (trace name).

    Returns ``{name: {"count", "total_s", "mean_s", "max_s",
    "phases": {phase: seconds}}}`` with sorted keys throughout.
    """
    table: dict[str, dict] = {}
    for tid in sorted(export.get("traces", {}), key=int):
        result = analyze_trace(export["traces"][tid])
        if not result["path"]:
            continue
        row = table.setdefault(result["name"], {
            "count": 0, "total_s": 0.0, "max_s": 0.0, "phases": {}})
        row["count"] += 1
        row["total_s"] += result["duration"]
        row["max_s"] = max(row["max_s"], result["duration"])
        for phase, seconds in result["phases"].items():
            row["phases"][phase] = row["phases"].get(phase, 0.0) + seconds
    out = {}
    for name in sorted(table):
        row = table[name]
        out[name] = {
            "count": row["count"],
            "total_s": round(row["total_s"], 9),
            "mean_s": round(row["total_s"] / row["count"], 9),
            "max_s": round(row["max_s"], 9),
            "phases": {k: round(v, 9)
                       for k, v in sorted(row["phases"].items())},
        }
    return out


def format_breakdown(agg: dict) -> str:
    """Text table of :func:`aggregate` (CLI ``critical`` subcommand)."""
    if not agg:
        return "(no traces)"
    phase_cols = [p for p in PHASES
                  if any(p in row["phases"] for row in agg.values())]
    header = (f"{'op kind':<22} {'count':>5} {'mean ms':>8} {'max ms':>8}  "
              + "  ".join(f"{p:>11}" for p in phase_cols))
    lines = [header, "-" * len(header)]
    for name, row in agg.items():
        cells = []
        for phase in phase_cols:
            seconds = row["phases"].get(phase, 0.0)
            share = seconds / row["total_s"] if row["total_s"] else 0.0
            cells.append(f"{1000 * seconds / row['count']:7.3f}={share:3.0%}")
        lines.append(f"{name:<22} {row['count']:>5} "
                     f"{1000 * row['mean_s']:8.3f} "
                     f"{1000 * row['max_s']:8.3f}  "
                     + "  ".join(f"{c:>11}" for c in cells))
    lines.append("(per-op-kind mean milliseconds on the critical path; "
                 "'=NN%' is the phase's share of the kind's total)")
    return "\n".join(lines)


def folded_stacks(export: dict) -> dict[str, int]:
    """Self-time flame data over *every* span (not just critical paths).

    Each span's self time is its duration minus its children's
    durations (clamped at zero — concurrent fan-out children can
    overlap their parent arbitrarily); stacks are ``;``-joined span
    names from the root.  Values are microseconds, summed across all
    traces, keys sorted — byte-identical across runs of one seed.
    """
    acc: dict[str, int] = {}
    for tid in sorted(export.get("traces", {}), key=int):
        spans = export["traces"][tid]["spans"]
        if not spans:
            continue
        trace_end = _trace_end(spans)
        by_id = {span["span"]: span for span in spans}
        children: dict[Optional[int], list[dict]] = {}
        for span in spans:
            parent = span["parent"]
            if parent is not None and parent not in by_id:
                parent = None  # dropped parent: treat as a root
            children.setdefault(parent, []).append(span)
        # spans are recorded in creation order, so an iterative
        # depth-first walk over the children lists is deterministic.
        stack: list[tuple[dict, str]] = [
            (span, span["name"]) for span in reversed(children.get(None, []))]
        while stack:
            span, path = stack.pop()
            kids = children.get(span["span"], [])
            span_time = _effective_end(span, trace_end) - span["start"]
            child_time = sum(_effective_end(k, trace_end) - k["start"]
                             for k in kids)
            self_us = round(max(span_time - child_time, 0.0) * 1e6)
            acc[path] = acc.get(path, 0) + self_us
            for kid in reversed(kids):
                stack.append((kid, f"{path};{kid['name']}"))
    return {k: acc[k] for k in sorted(acc)}


def format_flame(folded: dict[str, int]) -> str:
    """Folded-stack lines (``stack count``) for flamegraph renderers."""
    return "\n".join(f"{stack} {folded[stack]}"
                     for stack in sorted(folded))
