"""CLI for observability-instrumented runs.

Runs a chaos schedule with the metrics registry and span tracer
attached, then dumps the snapshot, renders per-request span
timelines, or verifies that the snapshot is deterministic (two runs
of the same seed must export byte-identical JSON — the CI smoke).

Examples::

    python -m repro.obs --seed 0                       # summary
    python -m repro.obs --seed 0 --json snap.json      # dump snapshot
    python -m repro.obs --seed 0 --text                # flat text form
    python -m repro.obs --seed 0 --timelines 3         # slowest traces
    python -m repro.obs --seed 0 --verify              # determinism check
    python -m repro.obs --diff before.json after.json  # snapshot diff

Diagnosis-pipeline subcommands (each runs one chaos schedule with the
relevant stage enabled)::

    python -m repro.obs series --seed 0                # sparklines
    python -m repro.obs series --pattern '*/coord.*'   # filtered
    python -m repro.obs critical --seed 0              # phase tables
    python -m repro.obs flame --seed 0 --out out.folded  # flamegraph data
    python -m repro.obs slo --seed 0                   # burn-rate report

Exit status: 0 on success; 1 when the run broke an invariant, the
``--verify`` check failed, or a snapshot file could not be read.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..chaos.runner import ChaosRunner
from ..chaos.schedule import PROFILES
from .metrics import SNAPSHOT_SCHEMA, diff_snapshots
from .trace import format_timeline


def _run(args: argparse.Namespace, **extra):
    runner = ChaosRunner(seed=args.seed, profile=args.profile,
                         duration=args.duration, n_nodes=args.nodes,
                         obs=True, **extra)
    report = runner.run()
    return runner, report


def _emit(text: str, out: Optional[str]) -> None:
    if out is None or out == "-":
        print(text)
    else:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"written to {out}")


def _cmd_series(args: argparse.Namespace) -> int:
    runner, report = _run(args, timeseries=True)
    _emit(runner.obs_bundle.timeseries.format_series(args.pattern),
          args.out)
    return 0 if report.ok else 1


def _cmd_critical(args: argparse.Namespace) -> int:
    from .critical import aggregate, format_breakdown
    runner, report = _run(args)
    export = runner.obs_bundle.tracer.export()
    _emit(format_breakdown(aggregate(export)), args.out)
    return 0 if report.ok else 1


def _cmd_flame(args: argparse.Namespace) -> int:
    from .critical import folded_stacks, format_flame
    runner, report = _run(args)
    export = runner.obs_bundle.tracer.export()
    _emit(format_flame(folded_stacks(export)), args.out)
    return 0 if report.ok else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    runner, report = _run(args, slo=True)
    _emit(runner.obs_bundle.slo.format_slo(), args.out)
    return 0 if report.ok else 1


_COMMANDS = {"series": _cmd_series, "critical": _cmd_critical,
             "flame": _cmd_flame, "slo": _cmd_slo}


def _slowest_traces(tracer, n: int) -> list[int]:
    """Trace ids ordered by wall time, longest first (ties by id)."""
    def span_time(tid: int) -> float:
        spans = tracer.spans(tid)
        ends = [s.end for s in spans if s.end is not None]
        return (max(ends) - spans[0].start) if ends else 0.0

    return sorted(tracer.traces,
                  key=lambda tid: (-span_time(tid), tid))[:n]


def _cmd_diff(path_a: str, path_b: str) -> int:
    try:
        with open(path_a) as fh:
            before = json.load(fh)
        with open(path_b) as fh:
            after = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    delta = diff_snapshots(before, after)
    print(json.dumps(delta, indent=2, sort_keys=True))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """CI smoke: same seed twice -> identical, schema-valid snapshot."""
    _, report1 = _run(args)
    _, report2 = _run(args)
    snap1, snap2 = report1.obs_snapshot, report2.obs_snapshot
    problems = []
    if snap1.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(f"schema {snap1.get('schema')!r} != "
                        f"{SNAPSHOT_SCHEMA!r}")
    if not snap1.get("series"):
        problems.append("snapshot has no series")
    if not snap1.get("vnodes"):
        problems.append("snapshot has no per-vnode feed rows")
    if snap1.get("tracing", {}).get("spans", 0) == 0:
        problems.append("tracer recorded no spans")
    text1 = json.dumps(snap1, sort_keys=True)
    text2 = json.dumps(snap2, sort_keys=True)
    if text1 != text2:
        problems.append("snapshots differ between identical runs")
        delta = diff_snapshots(snap1, snap2)
        print(json.dumps(delta, indent=2, sort_keys=True))
    if not report1.ok:
        problems.append("chaos invariants violated")
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: seed {args.seed} deterministic — "
          f"{len(snap1['series'])} series, "
          f"{snap1['tracing']['traces']} traces, "
          f"{snap1['tracing']['spans']} spans, "
          f"digest {report1.digest[:16]}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a chaos schedule with metrics + tracing on; "
                    "dump, verify, or diff the resulting snapshots.")
    parser.add_argument("command", nargs="?", default=None,
                        choices=sorted(_COMMANDS),
                        help="diagnosis-pipeline subcommand: 'series' "
                             "(time-series sparklines), 'critical' "
                             "(critical-path phase tables), 'flame' "
                             "(folded-stack flamegraph data), 'slo' "
                             "(burn-rate report)")
    parser.add_argument("--pattern", default="*",
                        help="series: fnmatch filter over labels")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="subcommands: write output to PATH "
                             "instead of stdout")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="mixed")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds of faulted workload")
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the snapshot as JSON ('-' = stdout)")
    parser.add_argument("--text", action="store_true",
                        help="print the flat text export")
    parser.add_argument("--timelines", type=int, metavar="N", default=0,
                        help="print the N slowest request timelines")
    parser.add_argument("--verify", action="store_true",
                        help="run the seed twice and fail unless the "
                             "snapshots are identical and schema-valid")
    parser.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                        default=None,
                        help="diff two snapshot JSON files and exit")
    args = parser.parse_args(argv)

    if args.diff:
        return _cmd_diff(*args.diff)
    if args.verify:
        return _cmd_verify(args)
    if args.command is not None:
        return _COMMANDS[args.command](args)

    runner, report = _run(args)
    bundle = runner.obs_bundle
    snap = report.obs_snapshot
    print(report.describe())
    tracing = snap.get("tracing", {})
    print(f"obs: {len(snap.get('series', {}))} series, "
          f"{tracing.get('traces', 0)} traces, "
          f"{tracing.get('spans', 0)} spans "
          f"({tracing.get('dropped_spans', 0)} dropped)")

    if args.json:
        payload = json.dumps(snap, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"snapshot -> {args.json}")
    if args.text and bundle is not None:
        print(bundle.metrics.to_text())
    if args.timelines and bundle is not None and bundle.tracer:
        for tid in _slowest_traces(bundle.tracer, args.timelines):
            print()
            print(format_timeline(bundle.tracer, tid))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
