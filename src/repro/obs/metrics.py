"""Metrics registry: counters, gauges, fixed-bucket histograms.

Series are keyed ``(node, vnode, name)`` — ``vnode`` is ``None`` for
node- or process-level series.  Handles are cached, so instrumented
code asks the registry once (usually at construction) and then pays a
single attribute bump per event.  A registry built with
``enabled=False`` hands out one shared no-op handle, so instrumented
components never branch on "is observability on" at call sites.

Everything here is sim-clock friendly: no wall-clock reads, no
randomness, no id()-keyed exports.  ``snapshot()`` is deterministic —
keys are emitted sorted, values are plain ints/floats — so two runs of
the same seed produce byte-identical JSON.

The per-vnode read/write/keys/bytes accounting that feeds the paper's
imbalance table (§V) lives in :class:`VnodeStatsFeed`.  The feed is
*always on* (rebalancing needs it whether or not observability is
enabled) and is the single source of those numbers: the node's
imbalance pusher calls :meth:`VnodeStatsFeed.row` and the registry
snapshot walks the very same status objects, so the frequencies an
operator sees in a snapshot are definitionally the ones pushed to
ZooKeeper.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterable, Optional

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "VnodeStatsFeed",
    "DEFAULT_BUCKETS", "NOOP", "DISABLED", "SNAPSHOT_SCHEMA",
    "diff_snapshots", "bucket_quantile", "bucket_fraction_le",
    "series_label",
]

SNAPSHOT_SCHEMA = "repro.obs/1"

#: Default histogram boundaries (seconds) — tuned for simulated LAN
#: request latencies: sub-millisecond store ops up to multi-second
#: timeout/recovery tails.  Observations above the last boundary land
#: in the implicit +inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class _Noop:
    """Shared do-nothing handle returned by disabled registries."""

    __slots__ = ()
    kind = "noop"

    def inc(self, n: int = 1) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0


NOOP = _Noop()


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def export(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set level (queue depth, cache size, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def export(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram with cumulative-``le`` semantics.

    ``counts[i]`` counts observations ``v <= bounds[i]`` that did not
    fit an earlier bucket (i.e. per-bucket, not pre-summed); the final
    slot is the implicit +inf bucket.  An observation exactly on a
    boundary lands in that boundary's bucket.
    """

    __slots__ = ("bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def export(self) -> dict:
        return {"type": "histogram", "count": self.count,
                "sum": round(self.total, 9),
                "buckets": {_bucket_label(b): c
                            for b, c in zip(self.bounds, self.counts)},
                "inf": self.counts[-1]}

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (0..1); see :func:`bucket_quantile`."""
        return bucket_quantile(self.bounds, self.counts, q)

    def fraction_le(self, threshold: float) -> float:
        """Interpolated fraction of observations ``<= threshold``."""
        return bucket_fraction_le(self.bounds, self.counts, threshold)


def _bucket_label(bound: float) -> str:
    return format(bound, "g")


def bucket_quantile(bounds: tuple[float, ...], counts: list[int],
                    q: float) -> float:
    """Interpolated quantile from per-bucket counts.

    The estimator is the Prometheus ``histogram_quantile`` one:
    observations are assumed uniformly spread inside their bucket, the
    rank is located in the cumulative distribution and interpolated
    linearly between the bucket's boundaries.  The first bucket's lower
    edge is 0 (latencies are non-negative) and a rank landing in the
    implicit +inf bucket is clamped to the highest finite boundary —
    both also Prometheus conventions.  Returns 0.0 on an empty
    histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cum = 0
    lo = 0.0
    for bound, count in zip(bounds, counts):
        if cum + count >= rank and count > 0:
            return lo + (bound - lo) * ((rank - cum) / count)
        cum += count
        lo = bound
    return bounds[-1]


def bucket_fraction_le(bounds: tuple[float, ...], counts: list[int],
                       threshold: float) -> float:
    """Interpolated fraction of observations ``<= threshold``.

    The SLO evaluator's "good events" estimator: buckets entirely at or
    below the threshold count in full, the bucket straddling it
    contributes linearly (uniform-in-bucket assumption), buckets above
    contribute nothing.  Observations in the +inf bucket are always
    above any finite threshold.  Returns 1.0 on an empty histogram
    (no observations → nothing violated the target).
    """
    total = sum(counts)
    if total == 0:
        return 1.0
    good = 0.0
    lo = 0.0
    for bound, count in zip(bounds, counts):
        if bound <= threshold:
            good += count
        elif lo < threshold:
            good += count * ((threshold - lo) / (bound - lo))
        lo = bound
    return good / total


def series_label(node: str, vnode: Optional[int], name: str) -> str:
    """Canonical flat label for one ``(node, vnode, name)`` series key —
    the form snapshots, diffs and the time-series recorder all use."""
    if vnode is None:
        return f"{node or '-'}/{name}"
    return f"{node or '-'}/v{vnode}/{name}"


class VnodeStatsFeed:
    """Always-on per-vnode accounting for one real node.

    Owns the vnode-id -> status mapping (the record type is injected —
    the node passes :class:`~repro.core.hashring.VnodeStatus` — so this
    module stays import-free of ``core``).  Replica handlers report
    reads/writes/key churn here, the imbalance pusher aggregates with
    :meth:`row`, and a :class:`MetricsRegistry` snapshot walks the same
    objects via :meth:`per_vnode`.
    """

    __slots__ = ("node", "_factory", "statuses", "underflows")

    def __init__(self, node: str, status_factory: Any = None) -> None:
        self.node = node
        self._factory = status_factory or _PlainStatus
        self.statuses: dict[int, Any] = {}
        #: Times a removal would have driven a counter below zero
        #: (migration/GC races double-reporting a key's departure).
        #: Clamped removals keep the imbalance row non-negative; the
        #: counter makes the race diagnosable instead of silent.
        self.underflows = 0

    def status(self, vnode_id: int) -> Any:
        """Get-or-create the live status record for a vnode."""
        status = self.statuses.get(vnode_id)
        if status is None:
            status = self.statuses[vnode_id] = self._factory()
        return status

    def record_read(self, vnode_id: int, n: int = 1) -> None:
        self.status(vnode_id).reads += n

    def record_write(self, vnode_id: int, n: int = 1) -> None:
        self.status(vnode_id).writes += n

    def key_added(self, vnode_id: int, size: int) -> None:
        status = self.status(vnode_id)
        status.keys += 1
        status.bytes += size

    def key_removed(self, vnode_id: int, size: int) -> None:
        status = self.status(vnode_id)
        status.keys -= 1
        status.bytes -= size
        if status.keys < 0 or status.bytes < 0:
            self.underflows += 1
            status.keys = max(status.keys, 0)
            status.bytes = max(status.bytes, 0)

    def discard(self, vnode_id: int) -> None:
        self.statuses.pop(vnode_id, None)

    def row(self) -> dict:
        """The per-node imbalance-table row (same shape the node pushes
        to ``/sedna/imbalance/<name>``)."""
        statuses = self.statuses.values()
        return {
            "vnodes": len(self.statuses),
            "keys": sum(s.keys for s in statuses),
            "bytes": sum(s.bytes for s in statuses),
            "reads": sum(s.reads for s in statuses),
            "writes": sum(s.writes for s in statuses),
        }

    def per_vnode(self) -> dict:
        """Sorted per-vnode export used by registry snapshots."""
        return {str(vid): {"keys": s.keys, "bytes": s.bytes,
                           "reads": s.reads, "writes": s.writes}
                for vid, s in sorted(self.statuses.items())}


class _PlainStatus:
    """Default status record when no factory is injected (tests)."""

    __slots__ = ("keys", "bytes", "reads", "writes", "warming")

    def __init__(self) -> None:
        self.keys = 0
        self.bytes = 0
        self.reads = 0
        self.writes = 0
        self.warming = False


class MetricsRegistry:
    """Series registry with cached handles and deterministic export.

    ``max_series`` caps label cardinality: once the cap is hit, new
    series degrade to the shared no-op handle and their keys are
    remembered in ``dropped_keys`` — ``dropped_series`` counts
    *distinct* dropped series (repeated ``_handle`` calls for the same
    over-cap key are one drop, not one per call), and the snapshot
    lists the sorted dropped labels so a cardinality blowup is
    diagnosable from the export alone.  A runaway label (per-key
    metrics, say) degrades observability instead of memory.
    """

    def __init__(self, enabled: bool = True, max_series: int = 4096) -> None:
        self.enabled = enabled
        self.max_series = max_series
        self._dropped: set[tuple] = set()
        self._series: dict[tuple, Any] = {}
        self._feeds: dict[str, VnodeStatsFeed] = {}

    @property
    def dropped_series(self) -> int:
        """Distinct series keys lost to the cardinality cap."""
        return len(self._dropped)

    @property
    def dropped_keys(self) -> list[str]:
        """Sorted labels of the capped-out series."""
        ordered = sorted(self._dropped,
                         key=lambda k: (k[0], -1 if k[1] is None else k[1],
                                        k[2]))
        return sorted(series_label(node, vnode, name)
                      for (node, vnode, name) in ordered)

    # -- handle creation -------------------------------------------------
    def counter(self, name: str, node: str = "",
                vnode: Optional[int] = None) -> Any:
        return self._handle(Counter, name, node, vnode)

    def gauge(self, name: str, node: str = "",
              vnode: Optional[int] = None) -> Any:
        return self._handle(Gauge, name, node, vnode)

    def histogram(self, name: str, node: str = "",
                  vnode: Optional[int] = None,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Any:
        return self._handle(Histogram, name, node, vnode, buckets)

    def _handle(self, cls: type, name: str, node: str,
                vnode: Optional[int], *args: Any) -> Any:
        if not self.enabled:
            return NOOP
        key = (node, vnode, name)
        handle = self._series.get(key)
        if handle is not None:
            if not isinstance(handle, cls):
                raise ValueError(
                    f"series {key} already registered as {handle.kind}, "
                    f"requested {cls.kind}")
            return handle
        if len(self._series) >= self.max_series:
            self._dropped.add(key)
            return NOOP
        handle = cls(*args)
        self._series[key] = handle
        return handle

    # -- vnode feeds -----------------------------------------------------
    def register_feed(self, feed: VnodeStatsFeed) -> VnodeStatsFeed:
        """Expose a node's live per-vnode feed in snapshots.

        Re-registering under the same node name replaces the old feed
        (nodes rebuild their feed on restart)."""
        self._feeds[feed.node] = feed
        return feed

    def feeds(self) -> Iterable[VnodeStatsFeed]:
        return [self._feeds[name] for name in sorted(self._feeds)]

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic point-in-time export of every series + feed."""
        series = {}
        for (node, vnode, name) in sorted(
                self._series,
                key=lambda k: (k[0], -1 if k[1] is None else k[1], k[2])):
            series[series_label(node, vnode, name)] = \
                self._series[(node, vnode, name)].export()
        vnodes = {name: self._feeds[name].per_vnode()
                  for name in sorted(self._feeds)}
        return {
            "schema": SNAPSHOT_SCHEMA,
            "enabled": self.enabled,
            "dropped_series": self.dropped_series,
            "dropped_keys": self.dropped_keys,
            "feed_underflows": {name: self._feeds[name].underflows
                                for name in sorted(self._feeds)},
            "series": series,
            "vnodes": vnodes,
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        """Flat ``name value`` lines for terminal diffing."""
        snap = self.snapshot()
        lines = [f"# {snap['schema']} enabled={snap['enabled']} "
                 f"dropped={snap['dropped_series']}"]
        for label, data in snap["series"].items():
            if data["type"] == "histogram":
                lines.append(f"{label} count={data['count']} "
                             f"sum={data['sum']}")
            else:
                lines.append(f"{label} {data['value']}")
        for node, per_vnode in snap["vnodes"].items():
            for vid, s in per_vnode.items():
                lines.append(
                    f"{node}/vnode/{vid} keys={s['keys']} "
                    f"bytes={s['bytes']} reads={s['reads']} "
                    f"writes={s['writes']}")
        return "\n".join(lines)


#: Top-level snapshot fields diffed into the ``meta`` section — series
#: and feed rows aside, these are the bits whose drift matters
#: (``enabled`` flips, cardinality-cap blowups, feed underflows).
_META_FIELDS = ("enabled", "dropped_series", "dropped_keys",
                "feed_underflows")


def diff_snapshots(before: dict, after: dict) -> dict:
    """Series-level diff of two snapshots (CLI ``diff`` subcommand).

    Returns ``{"added": [...], "removed": [...], "changed": {label:
    {"before": ..., "after": ...}}, "meta": {field: {"before": ...,
    "after": ...}}}`` over flat series, per-vnode feed rows and the
    top-level metadata fields (``enabled``, ``dropped_series``,
    ``dropped_keys``, ``feed_underflows``)."""

    def flatten(snap: dict) -> dict:
        flat: dict[str, Any] = dict(snap.get("series", {}))
        for node, per_vnode in snap.get("vnodes", {}).items():
            for vid, stats in per_vnode.items():
                flat[f"{node}/vnode/{vid}"] = stats
        return flat

    a, b = flatten(before), flatten(after)
    return {
        "added": sorted(set(b) - set(a)),
        "removed": sorted(set(a) - set(b)),
        "changed": {label: {"before": a[label], "after": b[label]}
                    for label in sorted(set(a) & set(b))
                    if a[label] != b[label]},
        "meta": {field: {"before": before.get(field),
                         "after": after.get(field)}
                 for field in _META_FIELDS
                 if before.get(field) != after.get(field)},
    }


#: Shared disabled registry — components built without observability
#: default to this and hand out :data:`NOOP` everywhere.
DISABLED = MetricsRegistry(enabled=False)
