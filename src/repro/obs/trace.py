"""Request-scoped tracing over the kernel's ``sim.tracer`` hook.

A trace is minted at the client when an operation starts and follows
the request through every hop: coordinator dispatch, replica RPCs,
read repair, ZK lookups.  Propagation is two-layered:

* **Event-graph inheritance** (implicit): the tracer rides the same
  three-hook protocol the hazard detector introduced
  (``on_schedule`` / ``on_step`` / ``on_step_done`` — plain runs pay
  one ``is None`` check per kernel operation).  Any event scheduled
  during a traced event's callback window inherits the active
  ``(trace_id, span_id)`` context, so generators, deferred callbacks
  and network deliveries stay in-trace with zero per-site wiring.
* **Envelope propagation** (explicit): when tracing is enabled,
  ``RpcNode.call_async`` stamps the active context into the request
  envelope (``"tr": [trace_id, span_id]``) and the serving side
  re-adopts it before running the handler.  This survives hops the
  event graph cannot see through — a request parked in a busy server's
  service queue, a watch fired long after registration — and gives the
  network tap a trace id to filter on.  With tracing disabled the
  field is never added, so payloads (and therefore simulated sizes,
  latencies, and histories) are byte-identical to an untraced run.

Spans are recorded per trace in creation order, which is causal order
(a child span is always created during its parent's lifetime), so the
span tree and its rendering are deterministic for a given seed.

A simulator has one tracer slot: span tracing and hazard detection
are mutually exclusive in a single run (``attach`` raises, same as
:class:`~repro.analysis.hazards.HazardDetector`).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Span", "SpanTracer", "format_timeline"]

#: ``(trace_id, span_id)`` — the wire form stamped into RPC envelopes.
Context = tuple


class Span:
    """One timed hop of a trace; ``end`` is None while open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start", "end", "tags")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, node: str,
                 start: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.tags: dict = {}

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def export(self) -> dict:
        return {"trace": self.trace_id, "span": self.span_id,
                "parent": self.parent_id, "name": self.name,
                "node": self.node, "start": round(self.start, 9),
                "end": None if self.end is None else round(self.end, 9),
                "tags": dict(sorted(self.tags.items()))}

    def __repr__(self) -> str:
        return (f"Span({self.trace_id}/{self.span_id} {self.name!r} "
                f"@{self.node} {self.start:g}..{self.end})")


class SpanTracer:
    """Span recorder installed as the simulator's ``tracer``.

    Instrumentation sites hold a reference (``self.tracer``, default
    ``None``) and call :meth:`start_trace` / :meth:`begin` /
    :meth:`finish`; context flows between sites through the event
    graph automatically.

    ``max_spans`` bounds memory on long chaos runs: past the cap new
    spans are counted in ``dropped_spans`` but not recorded (open
    spans can still be finished).
    """

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.span_count = 0
        self.traces: dict[int, list[Span]] = {}
        self.trace_names: dict[int, str] = {}
        self._sim: Optional[Any] = None
        self._next_trace = 1
        self._next_span = 1
        #: id(event) -> inherited (trace_id, span_id)
        self._ctx: dict[int, Context] = {}
        self._current: Optional[Context] = None
        #: Called with each span as it finishes (flight recorder feed).
        self.on_finish: list = []

    # -- attachment ------------------------------------------------------
    def attach(self, sim: Any) -> "SpanTracer":
        """Install on ``sim``; returns self for chaining."""
        if sim.tracer is not None:
            raise ValueError("simulator already has a tracer")
        sim.tracer = self
        self._sim = sim
        return self

    def detach(self) -> None:
        if self._sim is not None and self._sim.tracer is self:
            self._sim.tracer = None
        self._sim = None
        self._ctx.clear()
        self._current = None

    # -- kernel hooks (called by Simulator) ------------------------------
    def on_schedule(self, event: Any, priority: int, when: float) -> None:
        if self._current is not None:
            self._ctx[id(event)] = self._current

    def on_step(self, event: Any, when: float, priority: int) -> None:
        self._current = self._ctx.pop(id(event), None)

    def on_step_done(self, event: Any) -> None:
        self._current = None

    # -- span API (instrumentation sites) --------------------------------
    def start_trace(self, name: str, node: str = "") -> Span:
        """Mint a new trace with a root span and make it current."""
        trace_id = self._next_trace
        self._next_trace += 1
        self.trace_names[trace_id] = name
        span = self._new_span(trace_id, None, name, node)
        self._current = (trace_id, span.span_id)
        return span

    def begin(self, name: str, node: str = "",
              ctx: Optional[Context] = None) -> Optional[Span]:
        """Open a child span under ``ctx`` or the ambient context.

        Returns ``None`` when there is no active trace — callers
        finish with :meth:`finish`, which accepts ``None``, so sites
        stay a straight two-liner."""
        context = ctx if ctx is not None else self._current
        if context is None:
            return None
        trace_id, parent_id = context
        span = self._new_span(trace_id, parent_id, name, node)
        self._current = (trace_id, span.span_id)
        return span

    def finish(self, span: Optional[Span], **tags: Any) -> None:
        if span is None:
            return
        if span.end is None:
            span.end = self._now()
        if tags:
            span.tags.update(tags)
        for hook in self.on_finish:
            hook(span)

    def adopt(self, ctx: Any) -> None:
        """Re-enter a context carried out-of-band (an RPC envelope)."""
        if ctx is not None:
            self._current = (ctx[0], ctx[1])

    def current_ctx(self) -> Optional[Context]:
        return self._current

    def current_trace_id(self) -> Optional[int]:
        return None if self._current is None else self._current[0]

    # -- internals -------------------------------------------------------
    def _now(self) -> float:
        return 0.0 if self._sim is None else self._sim.now

    def _new_span(self, trace_id: int, parent_id: Optional[int],
                  name: str, node: str) -> Span:
        span = Span(trace_id, self._next_span, parent_id, name, node,
                    self._now())
        self._next_span += 1
        if self.span_count >= self.max_spans:
            self.dropped_spans += 1
        else:
            self.span_count += 1
            self.traces.setdefault(trace_id, []).append(span)
        return span

    # -- export ----------------------------------------------------------
    def spans(self, trace_id: int) -> list[Span]:
        return self.traces.get(trace_id, [])

    def export(self) -> dict:
        """Deterministic dump of every recorded trace."""
        return {
            "dropped_spans": self.dropped_spans,
            "traces": {str(tid): {
                "name": self.trace_names.get(tid, ""),
                "spans": [s.export() for s in spans],
            } for tid, spans in sorted(self.traces.items())},
        }


def format_timeline(tracer: SpanTracer, trace_id: int) -> str:
    """Indented per-request timeline (offsets relative to the root)."""
    spans = tracer.spans(trace_id)
    if not spans:
        return f"trace {trace_id}: (no spans)"
    root = spans[0]
    name = tracer.trace_names.get(trace_id, root.name)
    end = max((s.end for s in spans if s.end is not None),
              default=root.start)
    lines = [f"trace {trace_id} {name!r} start={root.start:.6f}s "
             f"total={1000 * (end - root.start):.3f}ms "
             f"spans={len(spans)}"]
    depths = {None: -1}
    for span in spans:
        depth = depths.get(span.parent_id, 0) + 1
        depths[span.span_id] = depth
        offset = 1000 * (span.start - root.start)
        took = ("open" if span.end is None
                else f"{1000 * (span.end - span.start):.3f}ms")
        tags = "".join(f" {k}={v}" for k, v in sorted(span.tags.items()))
        where = f" @{span.node}" if span.node else ""
        lines.append(f"  {'  ' * depth}[+{offset:8.3f}ms {took:>9}] "
                     f"{span.name}{where}{tags}")
    return "\n".join(lines)
