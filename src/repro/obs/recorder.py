"""Flight recorder: always-cheap rings of recent diagnostic context.

A chaos run that trips an invariant is only debuggable if the moments
*before* the violation were captured — but capturing everything for a
whole run is exactly what the bounded tracer/tap caps exist to avoid.
The flight recorder squares that: it continuously feeds three small
ring buffers (recent finished spans, recent non-zero metric deltas,
recent tap packets) at O(1) memory, and the chaos runner calls
:meth:`dump` only when an invariant actually fails — producing a
deterministic JSON artifact with the crash-adjacent context, like an
aircraft recorder surviving the incident it recorded.

The dump additionally cross-references the failure: every hard
anomaly's key is matched against the root-span ``key`` tags the chaos
runner stamps on workload traces, and the matching traces are embedded
*in full* (pulled from the live tracer, not the ring) under
``traces`` — so the artifact alone shows the violating operation's
span tree, the cluster-wide metric movement around it, and the raw
message flow.

Feeds are hook-based and opt-in: ``SpanTracer.on_finish`` for spans,
``TimeSeriesRecorder.on_sample`` for deltas, and a second
:class:`~repro.net.tap.NetworkTap` (pass-through, bounded by
``max_records``) for packets.  A run without a flight recorder pays
for none of this.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..net.tap import NetworkTap, TapRecord
from .timeseries import TimeSeriesRecorder
from .trace import Span, SpanTracer

__all__ = ["FlightRecorder", "FLIGHT_SCHEMA"]

FLIGHT_SCHEMA = "repro.obs.flightrec/1"


class FlightRecorder:
    """Bounded rings of recent spans / metric deltas / packets.

    Ring depths are per-feed: ``max_spans`` finished spans,
    ``max_samples`` time-series ticks (non-zero deltas only),
    ``max_packets`` tap records.
    """

    def __init__(self, max_spans: int = 512, max_samples: int = 64,
                 max_packets: int = 512) -> None:
        self.spans: deque = deque(maxlen=max_spans)
        self.samples: deque = deque(maxlen=max_samples)
        self.packets: deque = deque(maxlen=max_packets)
        self.dumps_taken = 0
        self._tracer: Optional[SpanTracer] = None
        self._tap: Optional[NetworkTap] = None

    # -- feeds -----------------------------------------------------------
    def observe_tracer(self, tracer: SpanTracer) -> "FlightRecorder":
        self._tracer = tracer
        tracer.on_finish.append(self._on_span)
        return self

    def observe_timeseries(self,
                           recorder: TimeSeriesRecorder) -> "FlightRecorder":
        recorder.on_sample.append(self._on_sample)
        return self

    def observe_network(self, network: Any) -> "FlightRecorder":
        """Attach the packet feed (a pass-through bounded tap)."""
        if self._tap is None:
            self._tap = NetworkTap(network, on_record=self._on_packet,
                                   keep_records=False)
        return self

    def detach(self) -> None:
        if self._tap is not None:
            self._tap.detach()
            self._tap = None
        if self._tracer is not None and self._on_span in \
                self._tracer.on_finish:
            self._tracer.on_finish.remove(self._on_span)

    def _on_span(self, span: Span) -> None:
        self.spans.append(span.export())

    def _on_sample(self, now: float, deltas: dict) -> None:
        moved = {label: point for label, point in deltas.items()
                 if self._nonzero(point)}
        self.samples.append((now, moved))

    def _on_packet(self, record: TapRecord) -> None:
        self.packets.append(record)

    @staticmethod
    def _nonzero(point: Any) -> bool:
        if isinstance(point, tuple):  # histogram (dcount, dsum, dbuckets)
            return point[0] != 0
        return point != 0

    # -- dump ------------------------------------------------------------
    def _violating_traces(self, anomalies: list) -> dict[str, list[int]]:
        """Trace ids whose root-span ``key`` tag covers an anomaly key.

        Multi-op roots carry comma-joined key lists, hence the split.
        """
        out: dict[str, list[int]] = {}
        if self._tracer is None:
            return out
        for anomaly in anomalies:
            hits = []
            for tid in sorted(self._tracer.traces):
                spans = self._tracer.traces[tid]
                if not spans or spans[0].parent_id is not None:
                    continue
                tagged = str(spans[0].tags.get("key", ""))
                if anomaly.key in tagged.split(","):
                    hits.append(tid)
            if hits:
                out[anomaly.key] = hits
        return out

    def dump(self, anomalies: list = (), time: float = 0.0) -> dict:
        """Deterministic JSON artifact of the rings plus cross-refs.

        ``anomalies`` are :class:`~repro.chaos.invariants.Anomaly`
        rows; the full span trees of the traces that touched a
        violating key are embedded under ``traces``.
        """
        self.dumps_taken += 1
        violating = self._violating_traces(list(anomalies))
        traces: dict[str, dict] = {}
        if self._tracer is not None:
            for hits in violating.values():
                for tid in hits:
                    traces[str(tid)] = {
                        "name": self._tracer.trace_names.get(tid, ""),
                        "spans": [s.export()
                                  for s in self._tracer.traces[tid]],
                    }
        return {
            "schema": FLIGHT_SCHEMA,
            "time": round(time, 9),
            "anomalies": [{"invariant": a.invariant, "key": a.key,
                           "detail": a.detail, "expected": a.expected}
                          for a in anomalies],
            "violating_traces": {k: violating[k] for k in sorted(violating)},
            "traces": {k: traces[k] for k in sorted(traces, key=int)},
            "recent_spans": list(self.spans),
            "samples": [{"time": round(now, 9),
                         "deltas": {label: self._export_point(point)
                                    for label, point in sorted(
                                        moved.items())}}
                        for now, moved in self.samples],
            "packets": [{"time": round(r.time, 9), "src": r.src,
                         "dst": r.dst, "kind": r.kind, "method": r.method,
                         "trace": r.trace}
                        for r in self.packets],
        }

    @staticmethod
    def _export_point(point: Any) -> Any:
        if isinstance(point, tuple):
            return {"count": point[0], "sum": round(point[1], 9),
                    "buckets": list(point[2])}
        if isinstance(point, float):
            return round(point, 9)
        return point
