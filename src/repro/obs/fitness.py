"""Per-scenario fitness extraction from a chaos run's observability.

The config explorer (``repro.tools.explorer``) scores every
(scenario, config) cell with one deterministic fitness record pulled
out of the run's :class:`~repro.chaos.runner.ChaosReport`:

* ``p99_read_s`` / ``p99_write_s`` — client-side end-to-end p99s,
  merged across every client's ``client.read_seconds`` /
  ``client.write_seconds`` histogram (PR-4 metrics registry);
* ``op_rate_spread`` — (max - min) / mean of per-storage-node op
  totals from the always-on per-vnode stats feeds — the placement
  balance the heat rebalancer is supposed to deliver;
* ``failure_ratio`` — client ops shed or timed out over total ops;
* ``aborts`` — migrations the rebalancer gave up on;
* ``violations`` — hard (unexpected) invariant anomalies.

``score`` folds them into one lower-is-better scalar.  Violations
dominate by construction: a run that breaks an invariant can never
outscore one that does not, whatever its latency.  Everything is
rounded before export so two identical runs serialize byte-identically.
"""

from __future__ import annotations

from typing import Any

from .metrics import DEFAULT_BUCKETS, bucket_quantile

__all__ = ["FITNESS_SCHEMA", "SCORE_WEIGHTS", "extract_fitness",
           "merge_histogram_series"]

FITNESS_SCHEMA = "repro.obs.fitness/1"

#: Scalar-score weights (docs/protocols.md §20.2).  Latencies are in
#: seconds, the ratios dimensionless; a violation outweighs any
#: achievable combination of the rest.
SCORE_WEIGHTS: dict[str, float] = {
    "violations": 1000.0,
    "p99_read_s": 2.0,
    "p99_write_s": 1.0,
    "op_rate_spread": 0.5,
    "failure_ratio": 5.0,
    "aborts": 0.2,
}


def merge_histogram_series(series: dict, name: str) -> list[int]:
    """Per-bucket counts of every ``*/<name>`` histogram, merged.

    All client latency histograms use :data:`DEFAULT_BUCKETS`; the
    merged counts list has one slot per bound plus the +inf bucket.
    """
    merged = [0] * (len(DEFAULT_BUCKETS) + 1)
    for label in sorted(series):
        data = series[label]
        if not label.endswith(f"/{name}") or data.get("type") != "histogram":
            continue
        buckets = data["buckets"]
        for i, bound in enumerate(DEFAULT_BUCKETS):
            merged[i] += buckets.get(format(bound, "g"), 0)
        merged[-1] += data.get("inf", 0)
    return merged


def _counter_sum(series: dict, name: str) -> int:
    return sum(series[label]["value"] for label in sorted(series)
               if label.endswith(f"/{name}")
               and series[label].get("type") == "counter")


def extract_fitness(report: Any) -> dict:
    """The fitness record for one obs-enabled chaos run.

    Raises ``ValueError`` on a report without an observability
    snapshot — fitness is undefined without the metrics layer.
    """
    snap = report.obs_snapshot
    if not snap:
        raise ValueError("fitness extraction needs an obs=True run "
                         "(empty obs_snapshot)")
    series = snap.get("series", {})
    read_counts = merge_histogram_series(series, "client.read_seconds")
    write_counts = merge_histogram_series(series, "client.write_seconds")
    p99_read = bucket_quantile(DEFAULT_BUCKETS, read_counts, 0.99)
    p99_write = bucket_quantile(DEFAULT_BUCKETS, write_counts, 0.99)

    ok_ops = sum(read_counts) + sum(write_counts)
    failures = _counter_sum(series, "client.failures")
    total_ops = ok_ops + failures
    failure_ratio = failures / total_ops if total_ops else 0.0

    # Per-storage-node op totals from the always-on vnode feeds.
    rates = []
    for node in sorted(snap.get("vnodes", {})):
        per_vnode = snap["vnodes"][node]
        rates.append(sum(s["reads"] + s["writes"]
                         for s in per_vnode.values()))
    spread = 0.0
    if rates and sum(rates) > 0:
        mean = sum(rates) / len(rates)
        spread = (max(rates) - min(rates)) / mean

    aborts = sum(1 for m in report.migrations if m["state"] == "aborted")
    violations = len([a for a in report.anomalies if not a.expected])

    fitness = {
        "schema": FITNESS_SCHEMA,
        "p99_read_s": round(p99_read, 6),
        "p99_write_s": round(p99_write, 6),
        "op_rate_spread": round(spread, 6),
        "failure_ratio": round(failure_ratio, 6),
        "ops": total_ops,
        "failures": failures,
        "aborts": aborts,
        "violations": violations,
    }
    fitness["score"] = round(
        sum(weight * fitness[field]
            for field, weight in sorted(SCORE_WEIGHTS.items())), 6)
    return fitness
