"""Deterministic time-series over registry snapshots.

A :class:`MetricsRegistry` snapshot is a point-in-time export; an
operator (or the SLO evaluator, or the flight recorder) wants the
*shape over time* — rates, levels and latency distributions per
sampling window.  :class:`TimeSeriesRecorder` samples the registry on
the simulated clock (one ``sim.recurring`` tick per interval), turns
each sample into per-series **deltas** (counters and histograms) or
**levels** (gauges), and keeps them in bounded per-series ring
buffers.

Everything is sim-clock deterministic: sampling rides the kernel's
event queue like any other daemon, points are plain ints/floats, and
:meth:`export` emits sorted labels — two runs of one seed produce
byte-identical JSON.  With the recorder absent (the default shipped
configuration) nothing here is imported on the hot path, so disabled
runs keep byte-identical digests.

Point shapes per series kind:

* counter — the delta since the previous sample (an int); rate over a
  window is ``sum(deltas) / (n * interval)``.
* gauge — the level at sample time (a float).
* histogram — ``(dcount, dsum, dbuckets)``: observation count delta,
  sum delta and the per-bucket count deltas; the SLO evaluator sums
  ``dbuckets`` over a window to interpolate windowed percentiles.

Series that appear mid-run are left-padded with zero points so every
ring stays index-aligned with the shared sample-time ring.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .metrics import MetricsRegistry, series_label

__all__ = ["TimeSeriesRecorder", "sparkline", "SERIES_SCHEMA"]

SERIES_SCHEMA = "repro.obs.timeseries/1"

#: Eight-level block ramp used by the CLI sparklines.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-alphabet ASCII/Unicode sparkline.

    The last ``width`` values are scaled against the window's own
    min/max (a flat window renders as all-low blocks); empty input
    renders as an empty string.  Deterministic: pure arithmetic over
    the inputs.
    """
    if not values:
        return ""
    window = values[-width:]
    lo = min(window)
    hi = max(window)
    span = hi - lo
    if span <= 0:
        return SPARK_BLOCKS[0] * len(window)
    top = len(SPARK_BLOCKS) - 1
    return "".join(SPARK_BLOCKS[int((v - lo) / span * top)] for v in window)


class _Track:
    """One series' bounded point ring."""

    __slots__ = ("kind", "points", "bounds")

    def __init__(self, kind: str, capacity: int,
                 bounds: tuple[float, ...] = ()) -> None:
        self.kind = kind
        self.points: deque = deque(maxlen=capacity)
        #: Histogram bucket boundaries (empty for counters/gauges) —
        #: exported so windowed percentiles can be interpolated from
        #: the recorded ``dbuckets`` alone.
        self.bounds = bounds

    def zero_point(self) -> Any:
        if self.kind == "histogram":
            return (0, 0.0, (0,) * (len(self.bounds) + 1))
        if self.kind == "gauge":
            return 0.0
        return 0


class TimeSeriesRecorder:
    """Periodic snapshot-delta sampler with bounded rings.

    Parameters
    ----------
    registry:
        The live :class:`MetricsRegistry` to sample.
    interval:
        Simulated seconds between samples.
    capacity:
        Ring depth per series (and for the shared sample-time ring);
        memory is ``O(series × capacity)`` regardless of run length.

    ``on_sample`` hooks (the SLO evaluator, the flight recorder) are
    called after every sample as ``hook(now, deltas)`` where ``deltas``
    maps every tracked label to the point just recorded.
    """

    def __init__(self, registry: MetricsRegistry, interval: float = 0.25,
                 capacity: int = 240) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.registry = registry
        self.interval = interval
        self.capacity = capacity
        self.times: deque = deque(maxlen=capacity)
        self.tracks: dict[str, _Track] = {}
        self.samples_taken = 0
        self.on_sample: list[Callable[[float, dict], None]] = []
        self._last: dict[str, Any] = {}
        self._running = False
        self._proc: Optional[Any] = None

    # -- sampling loop ---------------------------------------------------
    def start(self, sim: Any) -> "TimeSeriesRecorder":
        """Spawn the sampling daemon on ``sim``; returns self."""
        if self._running:
            return self
        self._running = True
        self._proc = sim.process(self._loop(sim), name="obs-timeseries")
        return self

    def stop(self) -> None:
        self._running = False

    def _loop(self, sim: Any):
        timer = sim.recurring(self.interval)
        while self._running:
            yield timer.tick()
            if not self._running:
                return
            self.sample(sim.now)

    # -- one sample ------------------------------------------------------
    def sample(self, now: float) -> dict:
        """Record one sample at time ``now``; returns the delta map."""
        self.times.append(now)
        self.samples_taken += 1
        deltas: dict[str, Any] = {}
        seen = len(self.times)
        for key in sorted(self.registry._series,
                          key=lambda k: (k[0],
                                         -1 if k[1] is None else k[1],
                                         k[2])):
            node, vnode, name = key
            handle = self.registry._series[key]
            label = series_label(node, vnode, name)
            track = self.tracks.get(label)
            if track is None:
                bounds = (tuple(handle.bounds)
                          if handle.kind == "histogram" else ())
                track = self.tracks[label] = _Track(
                    handle.kind, self.capacity, bounds)
                # Left-pad so this ring stays index-aligned with the
                # shared time ring (the series carried zero before it
                # was registered).
                for _ in range(seen - 1):
                    track.points.append(track.zero_point())
            if handle.kind == "counter":
                value = handle.value
                point = value - self._last.get(label, 0)
                self._last[label] = value
            elif handle.kind == "gauge":
                point = handle.value
            else:  # histogram
                raw = (handle.count, handle.total, tuple(handle.counts))
                prev = self._last.get(label)
                if prev is None:
                    prev = (0, 0.0, (0,) * len(raw[2]))
                point = (raw[0] - prev[0], raw[1] - prev[1],
                         tuple(c - p for c, p in zip(raw[2], prev[2])))
                self._last[label] = raw
            track.points.append(point)
            deltas[label] = point
        for hook in self.on_sample:
            hook(now, deltas)
        return deltas

    # -- windowed queries ------------------------------------------------
    def window(self, label: str, samples: Optional[int] = None) -> list:
        """The last ``samples`` points of one series (all when None)."""
        track = self.tracks.get(label)
        if track is None:
            return []
        points = list(track.points)
        if samples is not None:
            points = points[-samples:]
        return points

    def rate(self, label: str, samples: Optional[int] = None) -> float:
        """Windowed per-second rate of a counter (or histogram count).

        ``sum(deltas) / (n × interval)`` over the last ``samples``
        deltas — the elapsed time is exact because sampling is
        fixed-interval on the simulated clock.
        """
        track = self.tracks.get(label)
        points = self.window(label, samples)
        if not points:
            return 0.0
        if track is not None and track.kind == "histogram":
            total = sum(p[0] for p in points)
        else:
            total = sum(points)
        return total / (len(points) * self.interval)

    def matching(self, pattern: str) -> list[str]:
        """Sorted labels matching a ``fnmatch`` pattern."""
        from fnmatch import fnmatchcase
        return sorted(label for label in self.tracks
                      if fnmatchcase(label, pattern))

    # -- export ----------------------------------------------------------
    def export(self) -> dict:
        """Deterministic JSON-ready dump of every ring."""
        series = {}
        for label in sorted(self.tracks):
            track = self.tracks[label]
            if track.kind == "histogram":
                points: list = [
                    {"count": dc, "sum": round(ds, 9), "buckets": list(db)}
                    for dc, ds, db in track.points]
            elif track.kind == "gauge":
                points = [round(p, 9) for p in track.points]
            else:
                points = list(track.points)
            entry: dict[str, Any] = {"kind": track.kind, "points": points}
            if track.bounds:
                entry["bounds"] = list(track.bounds)
            series[label] = entry
        return {
            "schema": SERIES_SCHEMA,
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples_taken,
            "times": [round(t, 9) for t in self.times],
            "series": series,
        }

    def format_series(self, pattern: str = "*", width: int = 60) -> str:
        """Sparkline-per-series text view (CLI ``series`` subcommand).

        Counters and histograms render their per-sample deltas, gauges
        their levels; each line carries the windowed rate (counters /
        histogram observation counts) or the last level (gauges).
        """
        lines = [f"# {SERIES_SCHEMA} interval={self.interval:g}s "
                 f"samples={self.samples_taken}"]
        for label in self.matching(pattern):
            track = self.tracks[label]
            points = list(track.points)
            if track.kind == "histogram":
                values = [float(p[0]) for p in points]
                tail = f"{self.rate(label):.1f} obs/s"
            elif track.kind == "gauge":
                values = [float(p) for p in points]
                tail = f"last={points[-1]:g}" if points else "last=-"
            else:
                values = [float(p) for p in points]
                tail = f"{self.rate(label):.1f}/s"
            lines.append(f"{label:<44} {sparkline(values, width)}  "
                         f"[{track.kind} {tail}]")
        return "\n".join(lines)
