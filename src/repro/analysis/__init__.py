"""Determinism tooling for the simulation kernel.

Every result in this reproduction — the quorum safety argument
(R+W>N, W>N/2), the chaos invariants, the batch-throughput numbers —
rests on the simulation being *deterministic*: same seed, same
schedule, same history.  This package enforces that instead of hoping
for it:

* :mod:`repro.analysis.lint` — an AST-based static checker
  (stdlib ``ast``, no dependencies) with eight rules targeting the
  codebase's determinism invariants: no wall-clock reads, no unseeded
  randomness, no builtin-``hash`` ordering, no bare-``set`` iteration
  on fan-out paths, timeouts on every RPC, generator discipline for
  processes and callbacks, no swallow-everything excepts.
  Run as ``python -m repro.analysis.lint src``.

* :mod:`repro.analysis.hazards` — an opt-in dynamic detector that
  instruments the :class:`~repro.net.simulator.Simulator`, builds a
  happens-before graph over event-trigger and process-resume edges,
  logs same-timestep shared-state accesses, and flags *tie hazards*:
  two events at identical ``(time, priority)`` whose relative order
  changes observable state.  Enabled with ``ChaosRunner(...,
  hazards=True)`` or ``python -m repro.chaos --hazards``.

* :mod:`repro.analysis.pytest_plugin` — runs the lint automatically
  at the start of every pytest session (tier-1 included), so a stray
  ``time.time()`` fails the build before it flakes a replay.

See docs/protocols.md §13 for the rule catalogue and the waiver
syntax (``# repro: allow[rule-id]``).
"""

__all__ = ["LintReport", "Violation", "lint_paths",
           "HazardDetector", "TieHazard"]

_EXPORTS = {
    "LintReport": "lint", "Violation": "lint", "lint_paths": "lint",
    "HazardDetector": "hazards", "TieHazard": "hazards",
}


def __getattr__(name: str):
    # Lazy so ``python -m repro.analysis.lint`` does not import the
    # module twice (runpy warns when the package pre-imports it).
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(name)
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
