"""Project-wide AST index and heuristic call graph.

The per-file determinism lint (:mod:`repro.analysis.lint`) deliberately
never looks across file boundaries; the protocol analyzer
(:mod:`repro.analysis.protocol`) has to.  This module builds the shared
substrate both interprocedural passes run on:

* every ``.py`` file under the analysis roots parsed once, with a
  child -> parent map so checks can walk *up* the tree (enclosing
  function, enclosing ``try``),
* a table of every function/method (:class:`FunctionInfo`) keyed by
  qualified name, with generator-ness and parameter order precomputed,
* a heuristic call graph: for each call site, the set of project
  functions it may resolve to.  Resolution is intentionally
  conservative -- same-module names and ``self.method`` lookups resolve
  exactly; bare attribute calls resolve only when the method name is
  close to unique project-wide.  The consumers are written so that an
  unresolved call degrades to silence, never to a false positive.

The index is pure stdlib ``ast`` and rebuilds from scratch per run;
the whole tree (~100 files) indexes in well under a second, which keeps
the analyzer viable as a pytest-plugin pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "FunctionInfo",
    "SourceFile",
    "ProjectIndex",
    "dotted",
    "own_nodes",
    "iter_py_files",
]

# How many candidates an attribute call may resolve to before we give
# up and treat it as unresolved.  Small on purpose: a popular method
# name like ``get`` resolving to a dozen classes would poison every
# interprocedural walk with noise.
_MAX_ATTR_CANDIDATES = 4


def dotted(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain as ``a.b.c`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Yield nodes belonging to ``fn`` itself, not to nested defs.

    Nested ``def``/``lambda`` bodies are someone else's scope -- a
    ``yield`` or an ``args[...]`` read inside them must not be
    attributed to the enclosing function.
    """
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: FunctionNode) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes(fn))


def _param_names(fn: FunctionNode) -> Tuple[str, ...]:
    a = fn.args
    return tuple(p.arg for p in (*a.posonlyargs, *a.args))


def iter_py_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _module_name(path: Path) -> str:
    """Best-effort dotted module name for a file path.

    Files under a ``repro`` package directory get their real import
    path (``repro.core.node``); anything else (tests, fixtures) gets a
    stable pseudo-name derived from the trailing path components.
    """
    parts = list(path.resolve().with_suffix("").parts)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return ".".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the indexed tree."""

    qualname: str            # module.[Class.]name, nesting flattened
    module: str
    cls: Optional[str]       # immediately enclosing class, if any
    name: str
    path: str
    node: FunctionNode
    is_generator: bool
    params: Tuple[str, ...]  # positional parameter names, incl. self

    def call_params(self) -> Tuple[str, ...]:
        """Parameter names as seen from a call site (``self`` dropped)."""
        if self.cls is not None and self.params and \
                self.params[0] in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class SourceFile:
    """A parsed file plus the per-file lookup tables."""

    path: str
    module: str
    tree: ast.Module
    lines: List[str]
    call_site_only: bool = False
    parent_of: Dict[int, ast.AST] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    info_of: Dict[int, FunctionInfo] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parent_of.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionInfo]:
        cur: Optional[ast.AST] = self.parent(node)
        while cur is not None:
            info = self.info_of.get(id(cur))
            if info is not None:
                return info
            cur = self.parent(cur)
        return None


class _Collector(ast.NodeVisitor):
    """Builds the per-file function table with flattened qualnames."""

    def __init__(self, sfile: SourceFile) -> None:
        self.sfile = sfile
        self.scope: List[str] = []
        self.cls: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.cls.append(node.name)
        self.generic_visit(node)
        self.cls.pop()
        self.scope.pop()

    def _function(self, node: FunctionNode) -> None:
        qual = ".".join([self.sfile.module, *self.scope, node.name])
        info = FunctionInfo(
            qualname=qual,
            module=self.sfile.module,
            cls=self.cls[-1] if self.cls else None,
            name=node.name,
            path=self.sfile.path,
            node=node,
            is_generator=_is_generator(node),
            params=_param_names(node),
        )
        self.sfile.functions.append(info)
        self.sfile.info_of[id(node)] = info
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)


class ProjectIndex:
    """All files, all functions, and a conservative call graph."""

    def __init__(self) -> None:
        self.files: List[SourceFile] = []
        self.file_by_path: Dict[str, SourceFile] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        # (module, name) -> module-level function
        self.module_level: Dict[Tuple[str, str], FunctionInfo] = {}
        # (module, cls, name) -> method
        self.methods: Dict[Tuple[str, Optional[str], str], FunctionInfo] = {}
        # callee qualname -> [(caller, call node)]
        self.callers: Dict[str, List[Tuple[FunctionInfo, ast.Call]]] = {}
        # caller qualname -> {callee qualnames}
        self.callees: Dict[str, Set[str]] = {}
        # qualnames of generators handed to sim.process(...)
        self.process_targets: Set[str] = set()

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        checked_paths: Sequence[Union[str, Path]],
        call_site_paths: Sequence[Union[str, Path]] = (),
    ) -> "ProjectIndex":
        """Index ``checked_paths`` plus ``call_site_paths``.

        Files from ``call_site_paths`` (tests, benchmarks, ...) are
        indexed so their call sites count -- e.g. a handler exercised
        only from a test is not dead -- but rule findings are never
        reported against them (``SourceFile.call_site_only``).
        """
        index = cls()
        checked = {p.resolve() for p in iter_py_files(checked_paths)}
        everything = list(iter_py_files([*checked_paths, *call_site_paths]))
        for path in everything:
            index._add_file(path, call_site_only=path.resolve() not in checked)
        index._link_calls()
        return index

    def _add_file(self, path: Path, call_site_only: bool) -> None:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            return
        sfile = SourceFile(
            path=str(path),
            module=_module_name(path),
            tree=tree,
            lines=source.splitlines(),
            call_site_only=call_site_only,
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                sfile.parent_of[id(child)] = parent
        _Collector(sfile).visit(tree)
        for info in sfile.functions:
            self.functions[info.qualname] = info
            self.by_name.setdefault(info.name, []).append(info)
            self.methods[(info.module, info.cls, info.name)] = info
            if info.cls is None:
                self.module_level.setdefault((info.module, info.name), info)
        self.files.append(sfile)
        self.file_by_path[sfile.path] = sfile

    def _link_calls(self) -> None:
        for sfile in self.files:
            for node in ast.walk(sfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = sfile.enclosing_function(node)
                self._note_process_target(sfile, caller, node)
                if caller is None:
                    continue
                for callee in self.resolve_call(sfile, caller, node):
                    self.callers.setdefault(callee.qualname, []) \
                        .append((caller, node))
                    self.callees.setdefault(caller.qualname, set()) \
                        .add(callee.qualname)

    def _note_process_target(
        self,
        sfile: SourceFile,
        caller: Optional[FunctionInfo],
        call: ast.Call,
    ) -> None:
        """Record ``sim.process(self._loop(...))``-style generator roots."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "process"):
            return
        if not call.args or not isinstance(call.args[0], ast.Call):
            return
        for target in self.resolve_call(sfile, caller, call.args[0]):
            if target.is_generator:
                self.process_targets.add(target.qualname)

    # -- resolution ----------------------------------------------------

    def resolve_call(
        self,
        sfile: SourceFile,
        caller: Optional[FunctionInfo],
        call: ast.Call,
    ) -> List[FunctionInfo]:
        """Project functions this call may target (possibly empty).

        ``Name(...)`` resolves within the module; ``self.method(...)``
        resolves within the caller's class; other ``obj.method(...)``
        calls resolve by method name when the name is near-unique
        project-wide.  Unknown targets return ``[]``.
        """
        func = call.func
        if isinstance(func, ast.Name):
            hit = self.module_level.get((sfile.module, func.id))
            if hit is not None:
                return [hit]
            candidates = [f for f in self.by_name.get(func.id, ())
                          if f.cls is None]
            return candidates if len(candidates) == 1 else []
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ("self", "cls") \
                    and caller is not None and caller.cls is not None:
                hit = self.methods.get((sfile.module, caller.cls, func.attr))
                if hit is not None:
                    return [hit]
                # self.attr where the class doesn't define attr: fall
                # through to the name-based heuristic (mixins / base
                # classes in another module).
            candidates = self.by_name.get(func.attr, [])
            if 1 <= len(candidates) <= _MAX_ATTR_CANDIDATES:
                return list(candidates)
        return []

    # -- convenience ---------------------------------------------------

    def file_of(self, info: FunctionInfo) -> Optional[SourceFile]:
        return self.file_by_path.get(info.path)
