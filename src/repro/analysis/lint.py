"""Determinism lint: an AST checker for the simulation codebase.

Stdlib-only (``ast`` + ``tokenize``), because the reproduction must
not grow dependencies.  The rules are not generic style checks — each
one encodes an invariant the deterministic kernel relies on, learned
the hard way (PR 1 shipped a process-randomized ``hash()`` in gossip
peer selection; PR 2's recovery bug was a tie-order artifact):

``wall-clock``
    No ``time.time``/``time.monotonic``/``time.perf_counter`` /
    ``datetime.now`` inside sim code: simulated time is ``sim.now``.
``unseeded-random``
    No module-level ``random.*`` or ``uuid.uuid1/uuid4``: every RNG
    must be a ``random.Random(seed)`` instance derived from the run
    seed.
``builtin-hash``
    No builtin ``hash()``: str hashing is randomized per process
    (PYTHONHASHSEED), so any order or choice derived from it differs
    between otherwise identical runs.  Use ``zlib.crc32``.
``set-iteration``
    No iteration over bare ``set``s (fan-out loops, row shipping):
    set order is hash order.  Iterate ``sorted(...)``.
``rpc-timeout``
    Every ``rpc.call(...)`` carries a timeout (4th positional or
    ``timeout=``): a call that can block forever deadlocks the run
    and hides dead replicas from suspicion.
``process-not-generator``
    ``sim.process(f(...))`` targets must be generator functions; a
    plain function "runs" at registration time, silently out of
    order.
``callback-yields``
    ``sim.schedule_callback(d, fn)`` targets must be plain callables:
    a generator ``fn`` never executes, and a callback that re-enters
    ``sim.run`` corrupts the loop.
``naked-except``
    No ``except``/``except Exception`` whose body is just ``pass``:
    swallowing everything hides determinism bugs (and kernel
    misuse) on coordinate paths.

Waive a finding with a ``# repro: allow[rule-id]`` comment on the
flagged line or the line directly above it (``allow[*]`` waives all
rules for that line); add a reason after ``--``.

CLI::

    python -m repro.analysis.lint src [--format text|json]

Exit status is the number of unwaived violations (0 = clean).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

__all__ = ["RULES", "Violation", "LintReport", "lint_source",
           "lint_file", "lint_paths", "is_waived", "main"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: rule-id -> one-line description (the catalogue; docs/protocols.md §13).
RULES: dict[str, str] = {
    "wall-clock":
        "wall-clock read in sim code; use sim.now",
    "unseeded-random":
        "process-global randomness; use a seeded random.Random instance",
    "builtin-hash":
        "builtin hash() is randomized per process; use zlib.crc32",
    "set-iteration":
        "iteration over a bare set is hash-ordered; wrap in sorted()",
    "rpc-timeout":
        "rpc call without an explicit timeout",
    "process-not-generator":
        "sim.process target is not a generator function",
    "callback-yields":
        "schedule_callback target yields or re-enters sim.run",
    "naked-except":
        "except clause swallows everything with a bare pass",
}

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\[([\w*-]+(?:\s*,\s*[\w*-]+)*)\]")


def is_waived(lines: Sequence[str], rule: str, line: int) -> bool:
    """True when ``rule`` is waived at 1-based ``line`` of ``lines``.

    A waiver comment (``# repro: allow[rule-id]``; ``allow[*]`` matches
    every rule, comma-separated ids are allowed) on the flagged line or
    the line directly above it suppresses the finding.  Shared by the
    per-file lint and the interprocedural protocol analyzer so both
    speak the exact same waiver dialect.
    """
    for lineno in (line, line - 1):
        if 1 <= lineno <= len(lines):
            match = _WAIVER_RE.search(lines[lineno - 1])
            if match:
                allowed = {part.strip()
                           for part in match.group(1).split(",")}
                if rule in allowed or "*" in allowed:
                    return True
    return False

_WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)

_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "normalvariate",
    "lognormvariate", "paretovariate", "weibullvariate", "seed",
    "randbytes",
})

_UUID_FNS = frozenset({"uuid1", "uuid4"})


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False

    def render(self) -> str:
        tag = " (waived)" if self.waived else ""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}{tag}"


@dataclass
class LintReport:
    """All violations of one run, waived findings included."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> list[Violation]:
        """Violations that were not waived inline."""
        return [v for v in self.violations if not v.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.append(f"{self.files_checked} file(s) checked, "
                     f"{len(self.active)} violation(s)"
                     f" ({len(self.violations) - len(self.active)} waived)")
        return "\n".join(lines)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_generator_fn(fn: FunctionNode) -> bool:
    """True when ``fn``'s own body (nested defs excluded) yields."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not fn:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # ast.walk descends into nested defs; re-check ownership.
            if _owning_function(fn, node) is fn:
                return True
    return False


def _owning_function(root: FunctionNode,
                     target: ast.AST) -> Optional[ast.AST]:
    """The innermost def/lambda of ``root`` containing ``target``."""
    owner: Optional[ast.AST] = None

    def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
        nonlocal owner
        if node is target:
            owner = current
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            current = node
        for child in ast.iter_child_nodes(node):
            visit(child, current)

    visit(root, root)
    return owner


class _Scope:
    """Per-function tracking of names bound to set-valued expressions."""

    __slots__ = ("set_names",)

    def __init__(self) -> None:
        self.set_names: set[str] = set()


class _Checker(ast.NodeVisitor):
    """One file's worth of rule evaluation."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.violations: list[Violation] = []
        # Name -> def for module-level and nested functions in scope.
        self._functions: dict[str, FunctionNode] = {}
        # Class methods, per enclosing class: name -> def.
        self._methods: list[dict[str, FunctionNode]] = []
        # Attribute names assigned set-valued expressions (``self.x =
        # set()``), per enclosing class.
        self._set_attrs: list[set[str]] = []
        self._scopes: list[_Scope] = []
        self._collect()

    # -- context collection ------------------------------------------------
    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._functions[node.name] = node

    def _class_context(self, cls: ast.ClassDef) -> tuple[
            dict[str, FunctionNode], set[str]]:
        methods: dict[str, FunctionNode] = {}
        set_attrs: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.setdefault(node.name, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = self._self_attr(target)
                    if attr and self._is_set_expr(node.value, None):
                        set_attrs.add(attr)
            elif isinstance(node, ast.AnnAssign):
                attr = self._self_attr(node.target)
                if attr and self._is_set_annotation(node.annotation):
                    set_attrs.add(attr)
        return methods, set_attrs

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset", "Set", "FrozenSet",
                              "MutableSet")
        if isinstance(node, ast.Subscript):
            return _Checker._is_set_annotation(node.value)
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "MutableSet")
        return False

    # -- reporting ---------------------------------------------------------
    def _waived(self, rule: str, line: int) -> bool:
        return is_waived(self.lines, rule, line)

    def _flag(self, rule: str, node: ast.AST, detail: str = "") -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        message = RULES[rule] + (f": {detail}" if detail else "")
        self.violations.append(Violation(
            rule=rule, path=self.path, line=line, col=col,
            message=message, waived=self._waived(rule, line)))

    # -- scope plumbing ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods, set_attrs = self._class_context(node)
        self._methods.append(methods)
        self._set_attrs.append(set_attrs)
        self.generic_visit(node)
        self._methods.pop()
        self._set_attrs.pop()

    def _visit_function(self, node: FunctionNode) -> None:
        for name, child in ((n.name, n) for n in node.body
                            if isinstance(n, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))):
            self._functions.setdefault(name, child)
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- set-ness inference ------------------------------------------------
    def _is_set_expr(self, node: ast.AST,
                     scope: Optional[_Scope]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return True
            # ``mapping.get(key, set())``: the default documents the
            # value type, so the returned object is a set either way.
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and len(node.args) == 2
                    and self._is_set_expr(node.args[1], scope)):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("union", "intersection",
                                           "difference",
                                           "symmetric_difference")
                    and self._is_set_expr(node.func.value, scope)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, scope)
                    or self._is_set_expr(node.right, scope))
        if isinstance(node, ast.Name) and scope is not None:
            return node.id in scope.set_names
        attr = self._self_attr(node)
        if attr is not None and self._set_attrs:
            return attr in self._set_attrs[-1]
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scopes:
            scope = self._scopes[-1]
            is_set = self._is_set_expr(node.value, scope)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if is_set:
                        scope.set_names.add(target.id)
                    else:
                        scope.set_names.discard(target.id)
        self.generic_visit(node)

    # -- the rules ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_unseeded_random(node)
        self._check_builtin_hash(node)
        self._check_rpc_timeout(node)
        self._check_process_target(node)
        self._check_callback_target(node)
        self._check_set_consumer(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        for suffix in _WALL_CLOCK_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                self._flag("wall-clock", node, dotted)
                return

    def _check_unseeded_random(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted.startswith("random.") and \
                dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
            self._flag("unseeded-random", node, dotted)
        elif dotted.startswith("uuid.") and \
                dotted.split(".", 1)[1] in _UUID_FNS:
            self._flag("unseeded-random", node, dotted)

    def _check_builtin_hash(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._flag("builtin-hash", node)

    def _check_rpc_timeout(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "call"):
            return
        dotted = _dotted(node.func.value)
        if dotted is None or "rpc" not in dotted.split("."):
            return
        if len(node.args) >= 4:
            return
        if any(kw.arg == "timeout" for kw in node.keywords):
            return
        self._flag("rpc-timeout", node, f"{dotted}.call")

    def _resolve_callable(self,
                          node: ast.AST) -> Optional[FunctionNode]:
        """A same-file def for ``node`` (Name or ``self.method``)."""
        if isinstance(node, ast.Name):
            return self._functions.get(node.id)
        attr = self._self_attr(node)
        if attr is not None and self._methods:
            return self._methods[-1].get(attr)
        return None

    def _check_process_target(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            return
        dotted = _dotted(node.func.value)
        if dotted is None or "sim" not in dotted.split("."):
            return
        target = node.args[0]
        if not isinstance(target, ast.Call):
            return
        fn = self._resolve_callable(target.func)
        if fn is not None and not _is_generator_fn(fn):
            self._flag("process-not-generator", node,
                       f"{fn.name}() never yields")

    def _check_callback_target(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "schedule_callback"):
            return
        target: Optional[ast.AST] = None
        if len(node.args) >= 2:
            target = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "fn":
                    target = kw.value
        if target is None:
            return
        fn = self._resolve_callable(target)
        if fn is None:
            return
        if _is_generator_fn(fn):
            self._flag("callback-yields", node,
                       f"{fn.name}() is a generator; it will never run")
            return
        for inner in ast.walk(fn):
            if isinstance(inner, ast.Call):
                dotted = _dotted(inner.func)
                if dotted is not None and dotted.endswith("sim.run"):
                    self._flag("callback-yields", node,
                               f"{fn.name}() re-enters sim.run")
                    return

    def _check_set_consumer(self, node: ast.Call) -> None:
        """``list(s)`` / ``tuple(s)`` over a set is ordered consumption."""
        if (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and self._is_set_expr(node.args[0],
                                      self._scopes[-1]
                                      if self._scopes else None)):
            self._flag("set-iteration", node,
                       f"{node.func.id}() over a set")

    def _check_iteration(self, iter_node: ast.AST,
                         where: ast.AST) -> None:
        scope = self._scopes[-1] if self._scopes else None
        if self._is_set_expr(iter_node, scope):
            self._flag("set-iteration", where)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", ()):
            self._check_iteration(comp.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* a set is order-free; only check nested
        # non-set consumption inside the comprehension body.
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._swallows_everything(node.type) and \
                len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            self._flag("naked-except", node)
        self.generic_visit(node)

    @staticmethod
    def _swallows_everything(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        names: Iterable[ast.AST]
        if isinstance(type_node, ast.Tuple):
            names = type_node.elts
        else:
            names = (type_node,)
        for name in names:
            dotted = _dotted(name)
            if dotted in ("Exception", "BaseException"):
                return True
        return False


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one source string; returns every violation (waived too)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Violation(rule="parse-error", path=path,
                          line=err.lineno or 0, col=err.offset or 0,
                          message=f"unparseable file: {err.msg}")]
    checker = _Checker(path, tree, source)
    checker.visit(tree)
    return sorted(checker.violations,
                  key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_file(path: Path) -> list[Violation]:
    """Lint one file."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _iter_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Union[str, Path]]) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (dirs recurse)."""
    report = LintReport()
    for file_path in _iter_files(paths):
        report.files_checked += 1
        report.violations.extend(lint_file(file_path))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism lint for the simulation codebase.")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to check")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--show-waived", action="store_true",
                        help="list waived findings too")
    args = parser.parse_args(argv)
    report = lint_paths(args.paths)
    shown = report.violations if args.show_waived else report.active
    if args.format == "json":
        print(json.dumps([v.__dict__ for v in shown], indent=2))
    else:
        for violation in shown:
            print(violation.render())
        print(f"{report.files_checked} file(s) checked, "
              f"{len(report.active)} violation(s), "
              f"{len(report.violations) - len(report.active)} waived")
    return min(len(report.active), 125)


if __name__ == "__main__":
    sys.exit(main())
