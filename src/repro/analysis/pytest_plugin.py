"""Pytest plugin: run the determinism lint on every test session.

Loaded from the repository's root ``conftest.py`` via
``pytest_plugins``, so tier-1 (``python -m pytest -x -q``) fails fast
when sim code grows a wall-clock read, an unseeded RNG or a bare-set
fan-out — before the flake it would cause ever reaches a chaos replay.

Options
-------
``--no-repro-lint``
    Skip the session lint (e.g. while iterating on a known-dirty
    tree).
``--repro-lint-paths``
    Comma-separated roots to lint; defaults to the installed
    ``repro`` package source.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import pytest

from .lint import LintReport, lint_paths


def _default_paths() -> list[str]:
    import repro
    pkg_file = getattr(repro, "__file__", None)
    if pkg_file is None:  # pragma: no cover - namespace-package edge
        return []
    return [str(Path(pkg_file).parent)]


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("repro-analysis")
    group.addoption("--no-repro-lint", action="store_true",
                    default=False,
                    help="skip the determinism lint at session start")
    group.addoption("--repro-lint-paths", default="",
                    help="comma-separated paths to lint instead of "
                         "the repro package")


class _LintSession:
    """Holds the session's lint result for the terminal summary."""

    def __init__(self) -> None:
        self.report: Optional[LintReport] = None


_STATE = _LintSession()


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--no-repro-lint"):
        return
    # Workers of xdist-style runs or nested sessions: lint once.
    if getattr(config, "workerinput", None) is not None:
        return
    raw = config.getoption("--repro-lint-paths")
    paths = ([p for p in raw.split(",") if p] if raw
             else _default_paths())
    if not paths:
        return
    report = lint_paths(paths)
    _STATE.report = report
    if not report.ok:
        lines = [v.render() for v in report.active]
        raise pytest.UsageError(
            "determinism lint failed "
            f"({len(report.active)} violation(s); see "
            "docs/protocols.md §13, waive with '# repro: "
            "allow[rule-id]'):\n" + "\n".join(lines))


def pytest_terminal_summary(terminalreporter) -> None:
    report = _STATE.report
    if report is None:
        return
    waived = len(report.violations) - len(report.active)
    terminalreporter.write_line(
        f"repro determinism lint: {report.files_checked} file(s) "
        f"clean, {waived} waived finding(s)")
