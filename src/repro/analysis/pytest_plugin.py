"""Pytest plugin: run the determinism lint on every test session.

Loaded from the repository's root ``conftest.py`` via
``pytest_plugins``, so tier-1 (``python -m pytest -x -q``) fails fast
when sim code grows a wall-clock read, an unseeded RNG or a bare-set
fan-out — before the flake it would cause ever reaches a chaos replay.

The interprocedural protocol analyzer
(:mod:`repro.analysis.protocol`) can ride the same hook.  It is off by
default (it indexes the whole tree, not just the package) and enabled
with ``REPRO_PROTOCOL_ANALYSIS=1`` or ``--repro-protocol`` — CI's
tier-1 job sets the env var so protocol drift fails the suite exactly
like a lint finding.

Options
-------
``--no-repro-lint``
    Skip the session lint (e.g. while iterating on a known-dirty
    tree).
``--repro-lint-paths``
    Comma-separated roots to lint; defaults to the installed
    ``repro`` package source.
``--repro-protocol``
    Run the protocol analyzer too (same effect as
    ``REPRO_PROTOCOL_ANALYSIS=1``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

from .lint import LintReport, lint_paths
from .protocol import _DEFAULT_BASELINE, analyze_protocol_for_pytest


def _default_paths() -> list[str]:
    import repro
    pkg_file = getattr(repro, "__file__", None)
    if pkg_file is None:  # pragma: no cover - namespace-package edge
        return []
    return [str(Path(pkg_file).parent)]


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("repro-analysis")
    group.addoption("--no-repro-lint", action="store_true",
                    default=False,
                    help="skip the determinism lint at session start")
    group.addoption("--repro-lint-paths", default="",
                    help="comma-separated paths to lint instead of "
                         "the repro package")
    group.addoption("--repro-protocol", action="store_true",
                    default=False,
                    help="run the interprocedural protocol analyzer "
                         "(also enabled by REPRO_PROTOCOL_ANALYSIS=1)")


class _LintSession:
    """Holds the session's results for the terminal summary."""

    def __init__(self) -> None:
        self.report: Optional[LintReport] = None
        self.protocol_summary: Optional[str] = None


_STATE = _LintSession()


def _protocol_enabled(config: pytest.Config) -> bool:
    if config.getoption("--repro-protocol"):
        return True
    return os.environ.get("REPRO_PROTOCOL_ANALYSIS", "") not in ("", "0")


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--no-repro-lint"):
        return
    # Workers of xdist-style runs or nested sessions: lint once.
    if getattr(config, "workerinput", None) is not None:
        return
    raw = config.getoption("--repro-lint-paths")
    paths = ([p for p in raw.split(",") if p] if raw
             else _default_paths())
    if not paths:
        return
    report = lint_paths(paths)
    _STATE.report = report
    if not report.ok:
        lines = [v.render() for v in report.active]
        raise pytest.UsageError(
            "determinism lint failed "
            f"({len(report.active)} violation(s); see "
            "docs/protocols.md §13, waive with '# repro: "
            "allow[rule-id]'):\n" + "\n".join(lines))
    if _protocol_enabled(config):
        _run_protocol_analysis(config)


def _run_protocol_analysis(config: pytest.Config) -> None:
    root = Path(str(config.rootpath))
    new, summary = analyze_protocol_for_pytest(
        root, baseline=root / _DEFAULT_BASELINE)
    _STATE.protocol_summary = summary
    if new:
        lines = [v.render() for v in new]
        raise pytest.UsageError(
            f"protocol analysis failed ({len(new)} new finding(s); "
            "see docs/protocols.md §18, waive with '# repro: "
            "allow[rule-id]' or refresh the baseline with "
            "'python -m repro.analysis.protocol --write-baseline'):\n"
            + "\n".join(lines))


def pytest_terminal_summary(terminalreporter) -> None:
    report = _STATE.report
    if report is None:
        return
    waived = len(report.violations) - len(report.active)
    terminalreporter.write_line(
        f"repro determinism lint: {report.files_checked} file(s) "
        f"clean, {waived} waived finding(s)")
    if _STATE.protocol_summary is not None:
        terminalreporter.write_line(_STATE.protocol_summary)
