"""Dynamic tie-hazard detection for the simulation kernel.

The kernel's total order is ``(time, priority, sequence)``.  The
``sequence`` tiebreaker makes every run reproducible, but it is an
*accident of scheduling order*, not a designed ordering: two events at
identical ``(time, priority)`` run in whichever order they were
scheduled.  When both touch the same state and at least one writes,
the observable outcome depends on that accident — refactor the
scheduling (add a cache, reorder a fan-out, batch a loop) and history
silently changes.  That class of bug forced PR 2's recovery
re-duplication fix; this module detects it instead.

How it works (opt-in; the plain kernel pays one ``is None`` check):

1. :class:`HazardDetector` attaches to a
   :class:`~repro.net.simulator.Simulator` as its ``tracer``.  The
   kernel reports every schedule (with the event whose callback window
   scheduled it) and every step.
2. The detector builds a **happens-before graph**: event ``A``
   happens-before ``B`` when ``B`` was scheduled during ``A``'s
   callback window (event-trigger edges), transitively.  Process
   resumes run *inside* the callback window of the event the process
   waited on, so process-resume edges are covered by the same parent
   relation — each event carries a vector-clock-style ancestor chain
   and concurrency is "neither is on the other's chain".
3. Components report **shared-state accesses** through
   :meth:`HazardDetector.on_access` (or the :meth:`track_store` /
   :meth:`tracked_dict` wrappers); each access is attributed to the
   event whose callback window is executing.
4. At the end of every same-``(time, priority)`` step group the
   detector cross-checks: two *concurrent* events of the group that
   touched the same state key, at least one writing, is a
   :class:`TieHazard` — reported with both event sites (where each
   event was scheduled from); accesses are attributed to their event's
   site unless ``capture_access_sites=True`` buys exact per-access
   ``file:line`` at extra per-access cost.

Determinism of the detector itself: given the same seed the kernel
pops the same events in the same order, so the hazard list is
byte-stable across runs — asserted by
``tests/analysis/test_hazard_detector.py``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..net.simulator import Event, Process, Simulator

__all__ = ["TieHazard", "HazardDetector", "TrackedDict"]

#: Frames from these files are skipped when attributing a site.
_INTERNAL_FILES = ("simulator.py", "hazards.py")

#: code object -> (short path, is kernel/detector internal).  Site
#: capture runs on every schedule and access; a raw frame walk plus
#: this cache keeps it ~30x cheaper than ``traceback.extract_stack``
#: (which reads source lines for the whole stack).
_CODE_CACHE: dict[Any, tuple[str, bool]] = {}


def _shorten(code: Any) -> tuple[str, bool]:
    cached = _CODE_CACHE.get(code)
    if cached is None:
        normalized = code.co_filename.replace("\\", "/")
        base = normalized.rsplit("/", 1)[-1]
        cached = ("/".join(normalized.split("/")[-3:]),
                  base in _INTERNAL_FILES)
        _CODE_CACHE[code] = cached
    return cached


#: A site is captured raw as ``(code_object, f_lasti)`` and only
#: rendered to ``"path:line"`` when a hazard is actually reported.
#: Even reading ``frame.f_lineno`` is too expensive for the hot path
#: (CPython decodes the code object's line table on every access);
#: ``f_lasti`` is a plain struct field, and the bytecode offset maps
#: back to a line number lazily via ``code.co_lines()``.
_Site = Any  # tuple[code, int] raw, or str once formatted / from callers


def _raw_site(skip: int = 0) -> _Site:
    """``(code, f_lasti)`` of the innermost non-internal frame.

    ``skip`` hops over frames the caller knows are internal (a start
    hint only; the walk still verifies every frame it lands on).
    """
    frame = sys._getframe(1 + skip)
    get = _CODE_CACHE.get
    while frame is not None:
        code = frame.f_code
        cached = get(code)
        if cached is None:
            cached = _shorten(code)
        if not cached[1]:
            return (code, frame.f_lasti)
        frame = frame.f_back
    return "<unknown>"


def _fmt_site(site: _Site) -> str:
    if type(site) is tuple:
        code, lasti = site
        line = 0
        for start, end, lineno in code.co_lines():
            if lineno is not None and start <= lasti < end:
                line = lineno
                break
        return f"{_shorten(code)[0]}:{line}"
    return str(site)


def _site_from_stack() -> str:
    """``file:line`` of the innermost frame outside the kernel/detector."""
    return _fmt_site(_raw_site())


@dataclass(frozen=True)
class TieHazard:
    """Two same-instant, causally-unordered events racing on state."""

    time: float
    priority: int
    state_key: str
    first_label: str
    first_site: str
    first_access: str
    second_label: str
    second_site: str
    second_access: str

    def render(self) -> str:
        return (f"tie hazard at t={self.time:g} (priority "
                f"{self.priority}) on {self.state_key!r}:\n"
                f"    {self.first_label} scheduled at "
                f"{self.first_site}, access {self.first_access}\n"
                f"    {self.second_label} scheduled at "
                f"{self.second_site}, access {self.second_access}")

    def key(self) -> tuple:
        """Dedup identity: the racing pair, independent of when."""
        return (self.state_key,
                self.first_site, self.first_access,
                self.second_site, self.second_access)


class _EventInfo:
    """Per-event tracer bookkeeping."""

    __slots__ = ("eid", "parent", "site", "label", "prio")

    def __init__(self, eid: int, parent: Optional["_EventInfo"],
                 site: _Site, label: str):
        self.eid = eid
        self.parent = parent
        self.site = site
        self.label = label
        self.prio: Optional[int] = None


#: One shared-state access: ``(event_info, state_key, write, site)``.
#: A plain tuple, not a class — accesses are the hot-path allocation.
_Access = tuple

#: Event class -> display label, for non-Process events (Process labels
#: carry the instance name and are formatted per event).
_TYPE_LABELS: dict[type, str] = {}


class HazardDetector:
    """Happens-before tie-hazard detector; attach with :meth:`attach`.

    Parameters
    ----------
    capture_sites:
        When True (default) every schedule records the scheduling
        frame (a cached raw-frame walk) — the useful-report mode.
        Turn off to measure raw graph overhead.
    capture_access_sites:
        When True every *access* records its own frame too.  Off by
        default: it doubles the hot-path frame walks, and an access
        without its own site is attributed to the scheduling site of
        the event it ran under, which is where the fix goes anyway.
    max_hazards:
        Stop recording new unique hazards past this count (the run
        continues; the counter keeps increasing).
    """

    def __init__(self, capture_sites: bool = True,
                 capture_access_sites: bool = False,
                 max_hazards: int = 200):
        self.capture_sites = capture_sites
        self.capture_access_sites = capture_access_sites
        self.max_hazards = max_hazards
        self.hazards: list[TieHazard] = []
        self.total_race_pairs = 0
        self.events_seen = 0
        self.accesses_seen = 0
        self._sim: Optional[Simulator] = None
        self._next_id = 0
        self._info: dict[int, _EventInfo] = {}  # id(event) -> info
        self._current: Optional[_EventInfo] = None
        # One group = every pop at the same simulated instant (ties of
        # different priority are deterministically ordered; the pair
        # check below requires equal priority).
        self._group_time: Optional[float] = None
        self._group: list[_Access] = []
        self._group_stepped: list[_EventInfo] = []
        self._seen_keys: set[tuple] = set()

    # -- attachment --------------------------------------------------------
    def attach(self, sim: Simulator) -> "HazardDetector":
        """Install on ``sim``; returns self for chaining."""
        if sim.tracer is not None:
            raise ValueError("simulator already has a tracer")
        sim.tracer = self
        self._sim = sim
        return self

    def detach(self) -> None:
        """Remove from the simulator and flush the last step group."""
        self.finish()
        if self._sim is not None and self._sim.tracer is self:
            self._sim.tracer = None
        self._sim = None

    # -- kernel hooks (called by Simulator) --------------------------------
    def on_schedule(self, event: Event, priority: int,
                    when: float) -> None:
        """One event entered the queue; runs inside ``_schedule``."""
        self._next_id += 1
        site: _Site = "?"
        if self.capture_sites:
            # Inlined _raw_site(1): start at _schedule's caller, then
            # verify each frame against the internal-file cache.
            frame = sys._getframe(2)
            get = _CODE_CACHE.get
            while frame is not None:
                code = frame.f_code
                cached = get(code)
                if cached is None:
                    cached = _shorten(code)
                if not cached[1]:
                    site = (code, frame.f_lasti)
                    break
                frame = frame.f_back
            else:
                site = "<unknown>"
        cls = event.__class__
        label = _TYPE_LABELS.get(cls)
        if label is None:
            if isinstance(event, Process):
                label = f"process {event.name!r}"
            else:
                label = cls.__name__
                _TYPE_LABELS[cls] = label
        self._info[id(event)] = _EventInfo(
            self._next_id, self._current, site, label)

    def on_step(self, event: Event, when: float, priority: int) -> None:
        """One event popped; runs at the top of ``step``."""
        self.events_seen += 1
        if when != self._group_time:
            if self._group:
                self._analyze_group()
            elif self._group_stepped:
                # Nothing tracked this instant: just sever the closed
                # group's ancestor chains (what _analyze_group's
                # cleanup would do) without the full-call detour.
                for info in self._group_stepped:
                    info.parent = None
                self._group_stepped.clear()
            self._group_time = when
        info = self._info.pop(id(event), None)
        if info is None:  # scheduled before attach
            self._next_id += 1
            info = _EventInfo(self._next_id, None, "<pre-attach>",
                              type(event).__name__)
        info.prio = priority
        self._current = info
        self._group_stepped.append(info)

    def on_step_done(self, event: Event) -> None:
        """Callback window of the stepped event closed."""
        self._current = None

    # -- state-access reporting --------------------------------------------
    def on_access(self, state_key: str, write: bool,
                  site: Optional[_Site] = None) -> None:
        """Record one shared-state access under the current event.

        With no explicit ``site`` (and ``capture_access_sites`` off)
        the access is attributed to the scheduling site of the event
        it ran under when a hazard is reported.
        """
        if self._current is None:
            return  # outside any callback window: cannot be a tie
        self.accesses_seen += 1
        if site is None and self.capture_access_sites:
            site = _raw_site()
        self._group.append((self._current, state_key, write, site))

    def finish(self) -> None:
        """Flush the trailing step group (call when the run ends)."""
        self._analyze_group()
        self._group_time = None

    # -- happens-before ----------------------------------------------------
    @staticmethod
    def _ordered(a: _EventInfo, b: _EventInfo) -> bool:
        """True when one event is on the other's ancestor chain."""
        for lo, hi in ((a, b), (b, a)):
            node: Optional[_EventInfo] = hi
            while node is not None and node.eid >= lo.eid:
                if node is lo:
                    return True
                node = node.parent
        return False

    def _analyze_group(self) -> None:
        group, self._group = self._group, []
        stepped, self._group_stepped = self._group_stepped, []
        when = self._group_time if self._group_time is not None else 0.0
        try:
            if len(group) < 2:
                return
            by_key: dict[str, list[_Access]] = {}
            for access in group:
                by_key.setdefault(access[1], []).append(access)
            for state_key, accesses in by_key.items():
                if not any(write for _, _, write, _ in accesses):
                    continue
                # One representative access per event (prefer writes).
                per_event: dict[int, _Access] = {}
                for access in accesses:
                    kept = per_event.get(access[0].eid)
                    if kept is None or (access[2] and not kept[2]):
                        per_event[access[0].eid] = access
                if len(per_event) < 2:
                    continue
                reps = [per_event[eid] for eid in sorted(per_event)]
                for i, first in enumerate(reps):
                    a_info, _, a_write, a_site = first
                    for second in reps[i + 1:]:
                        b_info, _, b_write, b_site = second
                        if not (a_write or b_write):
                            continue
                        if a_info.prio != b_info.prio:
                            continue  # priority orders them by design
                        if self._ordered(a_info, b_info):
                            continue
                        self.total_race_pairs += 1
                        # An access without its own site is attributed
                        # to its event's scheduling site.
                        a_at = a_site if a_site is not None else a_info.site
                        b_at = b_site if b_site is not None else b_info.site
                        hazard = TieHazard(
                            time=when,
                            priority=a_info.prio or 0,
                            state_key=state_key,
                            first_label=a_info.label,
                            first_site=_fmt_site(a_info.site),
                            first_access=("write" if a_write else "read")
                                         + f" at {_fmt_site(a_at)}",
                            second_label=b_info.label,
                            second_site=_fmt_site(b_info.site),
                            second_access=("write" if b_write else "read")
                                          + f" at {_fmt_site(b_at)}")
                        if (hazard.key() not in self._seen_keys
                                and len(self.hazards) < self.max_hazards):
                            self._seen_keys.add(hazard.key())
                            self.hazards.append(hazard)
        finally:
            # Sever the closed group's ancestor chains: a tie can only
            # relate events of one instant, and any ordering path
            # between them lies entirely inside that instant — without
            # this, a periodic process grows an unbounded chain.
            for info in stepped:
                info.parent = None

    # -- reporting ---------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.hazards

    def report(self) -> str:
        """Human-readable hazard report."""
        lines = [f"hazard detector: {self.events_seen} events, "
                 f"{self.accesses_seen} tracked accesses, "
                 f"{self.total_race_pairs} race pair(s), "
                 f"{len(self.hazards)} unique hazard(s)"]
        lines.extend(h.render() for h in self.hazards)
        return "\n".join(lines)

    # -- instrumentation helpers -------------------------------------------
    def track_store(self, owner: str, store: Any) -> Any:
        """Wrap a :class:`VersionedStore`-shaped object's accessors.

        Reads (``read_all``/``read_latest``/``read_multi``) and writes
        (``write_latest``/``write_all``/``write_multi``/
        ``merge_elements``/``delete``) are reported per key under the
        state key ``"{owner}/{key}"``.  Wrapping is per *instance*, so
        a restarted node's fresh store must be re-tracked.
        """
        detector = self

        def wrap_keyed(method: Callable, write: bool) -> Callable:
            # State-key strings are cached per key and the group append
            # is inlined: keyed accessors are the hot path.
            key_cache: dict[str, str] = {}

            def wrapped(key: str, *args: Any, **kwargs: Any) -> Any:
                current = detector._current
                if current is not None:
                    detector.accesses_seen += 1
                    state_key = key_cache.get(key)
                    if state_key is None:
                        state_key = f"{owner}/{key}"
                        key_cache[key] = state_key
                    site = (_raw_site()
                            if detector.capture_access_sites else None)
                    detector._group.append((current, state_key, write,
                                            site))
                return method(key, *args, **kwargs)
            return wrapped

        def wrap_multi(method: Callable, write: bool,
                       key_of: Callable[[Any], str]) -> Callable:
            def wrapped(items: Iterable, *args: Any, **kwargs: Any) -> Any:
                items = list(items)
                site = (_raw_site()
                        if detector.capture_access_sites else None)
                for item in items:
                    detector.on_access(f"{owner}/{key_of(item)}", write,
                                       site=site)
                return method(items, *args, **kwargs)
            return wrapped

        for name in ("read_all", "read_latest"):
            if hasattr(store, name):
                setattr(store, name,
                        wrap_keyed(getattr(store, name), write=False))
        for name in ("write_latest", "write_all", "merge_elements",
                     "delete"):
            if hasattr(store, name):
                setattr(store, name,
                        wrap_keyed(getattr(store, name), write=True))
        if hasattr(store, "read_multi"):
            store.read_multi = wrap_multi(store.read_multi, False,
                                          lambda key: key)
        if hasattr(store, "write_multi"):
            store.write_multi = wrap_multi(store.write_multi, True,
                                           lambda entry: entry[0])
        return store

    def tracked_dict(self, name: str,
                     initial: Optional[dict] = None) -> "TrackedDict":
        """A dict whose item reads/writes report to this detector."""
        return TrackedDict(self, name, initial or {})


class TrackedDict(dict):
    """Shared-state dict reporting per-key accesses to a detector."""

    def __init__(self, detector: HazardDetector, name: str,
                 initial: dict):
        super().__init__(initial)
        self._detector = detector
        self._name = name
        self._key_cache: dict[Any, str] = {}

    def _report(self, key: Any, write: bool) -> None:
        # Inlined fast path of HazardDetector.on_access with a per-key
        # state-key cache: every dict touch lands here.
        detector = self._detector
        current = detector._current
        if current is None:
            return
        detector.accesses_seen += 1
        state_key = self._key_cache.get(key)
        if state_key is None:
            state_key = f"{self._name}[{key!r}]"
            self._key_cache[key] = state_key
        site = _raw_site() if detector.capture_access_sites else None
        detector._group.append((current, state_key, write, site))

    def __getitem__(self, key: Any) -> Any:
        self._report(key, write=False)
        return super().__getitem__(key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._report(key, write=False)
        return super().get(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._report(key, write=True)
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._report(key, write=True)
        super().__delitem__(key)

    def pop(self, key: Any, *default: Any) -> Any:
        self._report(key, write=True)
        return super().pop(key, *default)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._report(key, write=True)
        return super().setdefault(key, default)
