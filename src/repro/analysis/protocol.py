"""Interprocedural protocol analyzer: ``python -m repro.analysis.protocol``.

Three passes over one shared :class:`repro.analysis.index.ProjectIndex`:

**Pass A -- RPC conformance.**  Extracts the static registry of
``register("<method>", handler)`` sites (including the aliased
``r = self.rpc.register`` idiom and lambda handlers) and every
``rpc.call`` / ``call_retry`` / ``call_async`` / ``notify`` site --
including sites that route through *dispatch wrappers* such as
``Coordinator._replica_call(replica, method, args)``, discovered by a
fixpoint over functions that forward a parameter into the method slot
of a known RPC sink.  Flags calls to never-registered methods, dead
handlers no caller ever invokes, and payload-shape mismatches (dict
keys built at the call site diffed against the ``args[...]`` /
``args.get(...)`` keys the handler transitively reads).

**Pass B -- yield discipline.**  The RPC generator protocol is easy to
hold wrong: ``rpc.call`` without ``yield from`` silently does nothing.
Flags exactly that, generator results dropped on the floor, raw
``rpc.call`` sites whose ``RpcTimeout``/``RpcRejected`` can escape all
the way to a ``sim.process`` target with no ``try`` on the path and no
``call_retry`` mitigation, and handlers registered from inside a
running generator process (the late-registration window).

**Pass C -- digest-purity taint.**  Whole-program extension of the
per-file determinism lint: walks the transitive callee closure of the
golden-digest surface (``History``/``OpRecord``/``FinalState`` methods
and any ``digest``-named function) and flags nondeterminism primitives
(wall clock, process-global random, builtin ``hash``, ``uuid4``)
anywhere in that closure -- even two calls away from the recorded
state, and even if the line carries a waiver for a *different* rule.

Findings reuse :class:`repro.analysis.lint.Violation`, the JSON report
format, and the ``# repro: allow[rule-id]`` waiver dialect.  A
checked-in baseline (``tests/analysis/protocol_baseline.json``) makes
CI fail only on *new* findings; baseline entries are keyed on
``(rule, path, message)`` -- deliberately line-number-free so pure code
motion does not churn the baseline.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .index import (
    FunctionInfo,
    ProjectIndex,
    SourceFile,
    dotted,
    own_nodes,
)
from .lint import LintReport, Violation, is_waived

__all__ = [
    "PROTOCOL_RULES",
    "RegisterSite",
    "CallSite",
    "ProtocolAnalyzer",
    "analyze_paths",
    "load_baseline",
    "baseline_key",
    "render_method_table",
    "main",
]

PROTOCOL_RULES: Dict[str, str] = {
    "rpc-unregistered-method":
        "rpc call to a method no register() site ever registers",
    "rpc-dead-handler":
        "registered handler that no call site ever invokes",
    "rpc-payload-mismatch":
        "call-site payload keys disagree with the keys the handler reads",
    "rpc-no-yield-from":
        "generator rpc call (call/call_retry) not driven via yield from",
    "generator-dropped":
        "generator function called as a bare statement; result dropped",
    "rpc-unhandled-failure":
        "RpcTimeout/RpcRejected can escape to a sim.process target "
        "(no enclosing try, no call_retry)",
    "rpc-late-registration":
        "handler registered inside a generator process; register all "
        "handlers before the endpoint serves traffic",
    "digest-taint":
        "nondeterminism primitive reachable from the golden-digest surface",
}

# RPC sink primitives, by attribute name on an ``*.rpc`` chain.
# ``raises``: the call can surface RpcTimeout/RpcRejected at the site.
# ``generator``: the call returns a generator that must be yield-from'd.
# call_retry raises too on final failure, but the issue's contract --
# and this analyzer's -- is that bounded-retry wrappers count as the
# mitigation, so only raw ``call`` feeds rpc-unhandled-failure.
_BASES: Dict[str, Dict[str, bool]] = {
    "call": {"generator": True, "raises": True},
    "call_retry": {"generator": True, "raises": False},
    "call_async": {"generator": False, "raises": False},
    "notify": {"generator": False, "raises": False},
}

# Direct sites: (dst, method, args, ...) -> method at 1, payload at 2.
_DIRECT_METHOD_IDX = 1
_DIRECT_PAYLOAD_IDX = 2

_PROTECTIVE_EXCEPTIONS: FrozenSet[str] = frozenset(
    {"RpcTimeout", "RpcRejected", "RpcError", "Exception", "BaseException"})

_WALL_CLOCK = frozenset({
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns", "datetime.now",
    "datetime.utcnow", "datetime.today", "date.today",
})

_MODULE_NAME_SELF = "repro.net.rpc"  # the rpc layer itself is not a site


@dataclass
class RegisterSite:
    """One ``register("<method>", handler)`` call."""

    method: Optional[str]          # None when the name is dynamic
    sfile: SourceFile
    node: ast.Call
    owner: Optional[FunctionInfo]  # enclosing function, e.g. _register_rpc
    handler: Optional[FunctionInfo] = None
    handler_lambda: Optional[ast.Lambda] = None

    @property
    def line(self) -> int:
        return self.node.lineno

    def handler_label(self) -> str:
        if self.handler is not None:
            return self.handler.qualname
        if self.handler_lambda is not None:
            return "<lambda>"
        return "<dynamic>"


@dataclass
class CallSite:
    """One rpc call site, direct or through a dispatch wrapper."""

    method: Optional[str]          # None when the name is dynamic
    base: str                      # 'call' | 'call_retry' | 'call_async' | 'notify'
    sfile: SourceFile
    node: ast.Call
    caller: Optional[FunctionInfo]
    payload: Optional[ast.expr]
    via: Optional[str] = None      # wrapper qualname, if routed through one

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def generator(self) -> bool:
        return _BASES[self.base]["generator"]

    @property
    def raises(self) -> bool:
        return _BASES[self.base]["raises"]


@dataclass
class _Wrapper:
    """A function forwarding a parameter into an RPC method slot."""

    info: FunctionInfo
    method_param: str
    payload_param: Optional[str]
    base: str

    def method_idx(self) -> int:
        return self.info.call_params().index(self.method_param)

    def payload_idx(self) -> Optional[int]:
        if self.payload_param is None:
            return None
        return self.info.call_params().index(self.payload_param)


@dataclass
class _ReadSet:
    """Keys a handler reads from its payload argument."""

    required: Set[str] = field(default_factory=set)
    optional: Set[str] = field(default_factory=set)
    opaque: bool = False           # payload escapes; unread-key check off

    def merge(self, other: "_ReadSet") -> None:
        self.required |= other.required
        self.optional |= other.optional
        self.opaque = self.opaque or other.opaque


def _is_rpc_chain(node: ast.expr) -> bool:
    """True for value chains like ``self.rpc`` / ``node.rpc`` / ``self._rpc``."""
    chain = dotted(node)
    if chain is None:
        return False
    parts = chain.split(".")
    return "rpc" in parts or "_rpc" in parts


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(call: ast.Call, idx: int, name: str) -> Optional[ast.expr]:
    """Positional-or-keyword argument lookup, ``None`` past ``*args``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    if idx < len(call.args):
        arg = call.args[idx]
        if isinstance(arg, ast.Starred):
            return None
        if any(isinstance(a, ast.Starred) for a in call.args[:idx]):
            return None
        return arg
    return None


class ProtocolAnalyzer:
    """Runs the three passes over a built :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.registers: List[RegisterSite] = []
        self.calls: List[CallSite] = []
        self.wrappers: Dict[str, _Wrapper] = {}
        self.violations: List[Violation] = []
        self._reads_cache: Dict[Tuple[str, str], _ReadSet] = {}
        self._collect_register_and_direct_sites()
        self._discover_wrappers()
        self._collect_wrapper_sites()

    # -- shared helpers ------------------------------------------------

    def _flag(self, rule: str, sfile: SourceFile, node: ast.AST,
              message: str) -> None:
        if sfile.call_site_only:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(Violation(
            rule=rule, path=sfile.path, line=line, col=col,
            message=message,
            waived=is_waived(sfile.lines, rule, line)))

    # -- site extraction -----------------------------------------------

    def _collect_register_and_direct_sites(self) -> None:
        for sfile in self.index.files:
            if sfile.module == _MODULE_NAME_SELF:
                continue
            aliases = self._register_aliases(sfile)
            for node in ast.walk(sfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = sfile.enclosing_function(node)
                if self._is_register_call(sfile, node, caller, aliases):
                    self._add_register_site(sfile, node, caller)
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _BASES \
                        and _is_rpc_chain(func.value):
                    self._add_direct_site(sfile, node, caller, func.attr)

    def _register_aliases(
            self, sfile: SourceFile) -> Dict[Optional[int], Set[str]]:
        """Names bound to ``*.rpc.register`` (``r = self.rpc.register``),
        keyed by id() of the enclosing function node (None = module)."""
        aliases: Dict[Optional[int], Set[str]] = {}
        for node in ast.walk(sfile.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (isinstance(value, ast.Attribute)
                    and value.attr == "register"
                    and _is_rpc_chain(value.value)):
                continue
            owner = sfile.enclosing_function(node)
            key = id(owner.node) if owner is not None else None
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.setdefault(key, set()).add(target.id)
        return aliases

    def _is_register_call(
        self,
        sfile: SourceFile,
        node: ast.Call,
        caller: Optional[FunctionInfo],
        aliases: Dict[Optional[int], Set[str]],
    ) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr == "register" and _is_rpc_chain(func.value)
        if isinstance(func, ast.Name):
            key = id(caller.node) if caller is not None else None
            return func.id in aliases.get(key, ())
        return False

    def _add_register_site(self, sfile: SourceFile, node: ast.Call,
                           owner: Optional[FunctionInfo]) -> None:
        method = _const_str(_call_arg(node, 0, "method"))
        site = RegisterSite(method=method, sfile=sfile, node=node,
                            owner=owner)
        handler_expr = _call_arg(node, 1, "handler")
        if isinstance(handler_expr, ast.Lambda):
            site.handler_lambda = handler_expr
        elif handler_expr is not None:
            site.handler = self._resolve_handler(sfile, owner, handler_expr)
        self.registers.append(site)

    def _resolve_handler(
        self,
        sfile: SourceFile,
        owner: Optional[FunctionInfo],
        expr: ast.expr,
    ) -> Optional[FunctionInfo]:
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id in ("self", "cls") \
                    and owner is not None and owner.cls is not None:
                hit = self.index.methods.get(
                    (sfile.module, owner.cls, expr.attr))
                if hit is not None:
                    return hit
            candidates = self.index.by_name.get(expr.attr, [])
            return candidates[0] if len(candidates) == 1 else None
        if isinstance(expr, ast.Name):
            hit = self.index.module_level.get((sfile.module, expr.id))
            if hit is not None:
                return hit
            candidates = self.index.by_name.get(expr.id, [])
            return candidates[0] if len(candidates) == 1 else None
        return None

    def _add_direct_site(self, sfile: SourceFile, node: ast.Call,
                         caller: Optional[FunctionInfo], base: str) -> None:
        if base == "notify":
            # notify(dst, payload): no method name, no registry entry.
            self.calls.append(CallSite(
                method=None, base=base, sfile=sfile, node=node,
                caller=caller, payload=_call_arg(node, 1, "payload")))
            return
        method_expr = _call_arg(node, _DIRECT_METHOD_IDX, "method")
        self.calls.append(CallSite(
            method=_const_str(method_expr), base=base, sfile=sfile,
            node=node, caller=caller,
            payload=_call_arg(node, _DIRECT_PAYLOAD_IDX, "args")))

    # -- dispatch-wrapper fixpoint -------------------------------------

    def _discover_wrappers(self) -> None:
        """Fixpoint: a function whose parameter flows into the method
        slot of a known sink (a direct rpc call, or a previously found
        wrapper) is itself a dispatch wrapper."""
        changed = True
        while changed:
            changed = False
            # Direct sites with a parameter in the method slot.
            for site in self.calls:
                if site.base == "notify" or site.caller is None:
                    continue
                if site.caller.qualname in self.wrappers:
                    continue
                method_expr = _call_arg(
                    site.node, _DIRECT_METHOD_IDX, "method")
                wrapper = self._wrapper_from_forward(
                    site.caller, method_expr, site.payload, site.base)
                if wrapper is not None:
                    self.wrappers[site.caller.qualname] = wrapper
                    changed = True
            # Calls into known wrappers with a parameter forwarded on.
            for sfile in self.index.files:
                for node in ast.walk(sfile.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    caller = sfile.enclosing_function(node)
                    if caller is None or caller.qualname in self.wrappers:
                        continue
                    inner = self._wrapper_target(sfile, caller, node)
                    if inner is None:
                        continue
                    method_expr = _call_arg(
                        node, inner.method_idx(), inner.method_param)
                    payload_idx = inner.payload_idx()
                    payload_expr = None if payload_idx is None else _call_arg(
                        node, payload_idx, inner.payload_param or "")
                    wrapper = self._wrapper_from_forward(
                        caller, method_expr, payload_expr, inner.base)
                    if wrapper is not None:
                        self.wrappers[caller.qualname] = wrapper
                        changed = True

    def _wrapper_from_forward(
        self,
        caller: FunctionInfo,
        method_expr: Optional[ast.expr],
        payload_expr: Optional[ast.expr],
        base: str,
    ) -> Optional[_Wrapper]:
        if not (isinstance(method_expr, ast.Name)
                and method_expr.id in caller.call_params()):
            return None
        payload_param = None
        if isinstance(payload_expr, ast.Name) \
                and payload_expr.id in caller.call_params():
            payload_param = payload_expr.id
        return _Wrapper(info=caller, method_param=method_expr.id,
                        payload_param=payload_param, base=base)

    def _wrapper_target(
        self,
        sfile: SourceFile,
        caller: Optional[FunctionInfo],
        node: ast.Call,
    ) -> Optional[_Wrapper]:
        for target in self.index.resolve_call(sfile, caller, node):
            wrapper = self.wrappers.get(target.qualname)
            if wrapper is not None:
                return wrapper
        return None

    def _collect_wrapper_sites(self) -> None:
        """Second sweep: calls into discovered wrappers become sites."""
        for sfile in self.index.files:
            for node in ast.walk(sfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = sfile.enclosing_function(node)
                wrapper = self._wrapper_target(sfile, caller, node)
                if wrapper is None:
                    continue
                method_expr = _call_arg(
                    node, wrapper.method_idx(), wrapper.method_param)
                # A wrapper forwarding its own method parameter into
                # another wrapper is a hop, not a leaf call site.
                if isinstance(method_expr, ast.Name) \
                        and caller is not None \
                        and method_expr.id in caller.params:
                    continue
                payload_idx = wrapper.payload_idx()
                payload = None if payload_idx is None else _call_arg(
                    node, payload_idx, wrapper.payload_param or "")
                self.calls.append(CallSite(
                    method=_const_str(method_expr), base=wrapper.base,
                    sfile=sfile, node=node, caller=caller, payload=payload,
                    via=wrapper.info.qualname))

    # -- pass A: rpc conformance ---------------------------------------

    def check_conformance(self) -> None:
        registry: Dict[str, List[RegisterSite]] = {}
        for site in self.registers:
            if site.method is not None:
                registry.setdefault(site.method, []).append(site)
        called: Set[str] = {c.method for c in self.calls
                            if c.method is not None}

        for call in self.calls:
            if call.method is None or call.base == "notify":
                continue
            if call.method not in registry:
                self._flag(
                    "rpc-unregistered-method", call.sfile, call.node,
                    f"rpc method '{call.method}' is never registered "
                    f"by any register() site")

        for site in self.registers:
            if site.method is None:
                continue
            if site.method not in called:
                self._flag(
                    "rpc-dead-handler", site.sfile, site.node,
                    f"handler {site.handler_label()} for "
                    f"'{site.method}' has no call site anywhere "
                    f"(src, tests, or benchmarks)")

        self._check_payload_shapes(registry)

    def _check_payload_shapes(
            self, registry: Dict[str, List[RegisterSite]]) -> None:
        for call in self.calls:
            if call.method is None or call.base == "notify":
                continue
            sites = registry.get(call.method, [])
            if len(sites) != 1:
                continue
            reads = self._handler_reads(sites[0])
            if reads is None:
                continue
            keys = self._payload_keys(call)
            if keys is None:
                continue
            handler = sites[0].handler_label()
            missing = sorted(reads.required - keys)
            if missing:
                self._flag(
                    "rpc-payload-mismatch", call.sfile, call.node,
                    f"payload for '{call.method}' omits key(s) "
                    f"{missing} read unconditionally by {handler}")
            if not reads.opaque:
                unread = sorted(keys - reads.required - reads.optional)
                if unread:
                    self._flag(
                        "rpc-payload-mismatch", call.sfile, call.node,
                        f"payload for '{call.method}' passes key(s) "
                        f"{unread} that {handler} never reads")

    # handler read-set computation -------------------------------------

    def _handler_reads(self, site: RegisterSite) -> Optional[_ReadSet]:
        if site.handler_lambda is not None:
            lam = site.handler_lambda
            params = [a.arg for a in lam.args.args]
            if not params:
                return None
            return self._reads_in(site.sfile, lam, params[-1], depth=0,
                                  seen=set())
        if site.handler is not None:
            info = site.handler
            params = list(info.params)
            if not params:
                return None
            return self._function_reads(info, params[-1], depth=0,
                                        seen=set())
        return None

    def _function_reads(self, info: FunctionInfo, param: str, depth: int,
                        seen: Set[str]) -> _ReadSet:
        cache_key = (info.qualname, param)
        cached = self._reads_cache.get(cache_key)
        if cached is not None:
            return cached
        sfile = self.index.file_of(info)
        if sfile is None or depth > 6 or cache_key[0] in seen:
            return _ReadSet(opaque=True)
        seen = seen | {info.qualname}
        reads = self._reads_in(sfile, info.node, param, depth, seen)
        self._reads_cache[cache_key] = reads
        return reads

    def _reads_in(self, sfile: SourceFile, scope: ast.AST, param: str,
                  depth: int, seen: Set[str]) -> _ReadSet:
        reads = _ReadSet()
        for node in own_nodes(scope):
            if not (isinstance(node, ast.Name) and node.id == param):
                continue
            parent = sfile.parent(node)
            if self._classify_param_use(sfile, node, parent, reads,
                                        depth, seen):
                continue
            reads.opaque = True
        return reads

    def _classify_param_use(
        self,
        sfile: SourceFile,
        node: ast.Name,
        parent: Optional[ast.AST],
        reads: _ReadSet,
        depth: int,
        seen: Set[str],
    ) -> bool:
        """Fold one use of the payload name into ``reads``.

        Returns False for uses we cannot account for (the payload
        escapes), which makes the read set opaque.
        """
        # args["key"] -- a required read; args["key"] = v is a write.
        if isinstance(parent, ast.Subscript) and parent.value is node:
            key = _const_str(parent.slice)
            if key is None:
                return False
            if isinstance(parent.ctx, ast.Load):
                reads.required.add(key)
            return True
        # args.get("key" [, default]) / "key" in args
        if isinstance(parent, ast.Attribute) and parent.value is node:
            grand = sfile.parent(parent)
            if parent.attr == "get" and isinstance(grand, ast.Call) \
                    and grand.func is parent and grand.args:
                key = _const_str(grand.args[0])
                if key is not None:
                    reads.optional.add(key)
                    return True
            return False
        if isinstance(parent, ast.Compare) \
                and any(isinstance(op, (ast.In, ast.NotIn))
                        for op in parent.ops) \
                and node in parent.comparators:
            key = _const_str(parent.left)
            if key is not None:
                reads.optional.add(key)
                return True
            return False
        # Forwarded into another function we can resolve: recurse and
        # fold the callee's reads in.  ``dict(args)`` and anything we
        # cannot resolve leaves the set opaque.
        if isinstance(parent, ast.Call) and node in parent.args:
            caller = sfile.enclosing_function(node)
            targets = self.index.resolve_call(sfile, caller, parent)
            if len(targets) == 1:
                target = targets[0]
                idx = parent.args.index(node)
                call_params = target.call_params()
                if idx < len(call_params):
                    reads.merge(self._function_reads(
                        target, call_params[idx], depth + 1, seen))
                    return True
            return False
        return False

    # call-site payload keys -------------------------------------------

    def _payload_keys(self, call: CallSite) -> Optional[Set[str]]:
        if call.payload is None:
            return None
        return self._keys_of_expr(call.sfile, call.caller, call.payload,
                                  depth=0)

    def _keys_of_expr(self, sfile: SourceFile,
                      caller: Optional[FunctionInfo],
                      expr: ast.expr, depth: int) -> Optional[Set[str]]:
        if depth > 4:
            return None
        if isinstance(expr, ast.Dict):
            keys: Set[str] = set()
            for key in expr.keys:
                if key is None:          # {**spread}: unresolvable
                    return None
                literal = _const_str(key)
                if literal is None:
                    return None
                keys.add(literal)
            return keys
        # dict(other) copies: resolve the source, then pick up any
        # name["k"] = ... additions the caller makes before sending.
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "dict" and len(expr.args) == 1 \
                and not expr.keywords:
            return self._keys_of_expr(sfile, caller, expr.args[0],
                                      depth + 1)
        if isinstance(expr, ast.Name) and caller is not None:
            return self._keys_of_name(sfile, caller, expr.id, depth)
        return None

    def _keys_of_name(self, sfile: SourceFile, caller: FunctionInfo,
                      name: str, depth: int) -> Optional[Set[str]]:
        if name in caller.params:
            return None                  # opaque passthrough
        assigned: Optional[Set[str]] = None
        assignments = 0
        extra: Set[str] = set()
        for node in own_nodes(caller.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        assignments += 1
                        assigned = self._keys_of_expr(
                            sfile, caller, node.value, depth + 1)
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == name \
                    and isinstance(node.ctx, ast.Store):
                key = _const_str(node.slice)
                if key is None:
                    return None
                extra.add(key)
        if assignments != 1 or assigned is None:
            return None
        return assigned | extra

    # -- pass B: yield discipline --------------------------------------

    def check_yield_discipline(self) -> None:
        for call in self.calls:
            if call.generator:
                parent = call.sfile.parent(call.node)
                if not isinstance(parent, ast.YieldFrom):
                    label = call.via or f"rpc.{call.base}"
                    self._flag(
                        "rpc-no-yield-from", call.sfile, call.node,
                        f"result of generator rpc call via {label} "
                        f"must be driven with 'yield from'")
        self._check_dropped_generators()
        self._check_unhandled_failures()
        for site in self.registers:
            if site.owner is not None and site.owner.is_generator:
                self._flag(
                    "rpc-late-registration", site.sfile, site.node,
                    f"register() inside generator "
                    f"{site.owner.qualname}; handlers must be "
                    f"registered before the endpoint serves traffic")

    def _check_dropped_generators(self) -> None:
        rpc_call_nodes = {id(c.node) for c in self.calls}
        for sfile in self.index.files:
            for node in ast.walk(sfile.tree):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                if id(node.value) in rpc_call_nodes:
                    continue             # rpc-no-yield-from covers these
                caller = sfile.enclosing_function(node)
                targets = self.index.resolve_call(sfile, caller,
                                                  node.value)
                if targets and all(t.is_generator for t in targets):
                    self._flag(
                        "generator-dropped", sfile, node.value,
                        f"call to generator "
                        f"{targets[0].qualname} as a bare statement "
                        f"creates a generator and drops it")

    # unhandled-failure escalation -------------------------------------

    def _check_unhandled_failures(self) -> None:
        for call in self.calls:
            if not call.raises or call.caller is None:
                continue
            if self._protected(call.sfile, call.node):
                continue
            chain = self._escapes_to_process(call.caller, depth=0,
                                             seen=set())
            if chain is not None:
                route = " -> ".join(f.qualname for f in chain)
                method = call.method or "<dynamic>"
                self._flag(
                    "rpc-unhandled-failure", call.sfile, call.node,
                    f"RpcTimeout/RpcRejected from '{method}' can "
                    f"escape to sim process target {route}")

    def _protected(self, sfile: SourceFile, node: ast.AST) -> bool:
        """Is ``node`` inside the body of a try that catches rpc errors?"""
        child: ast.AST = node
        parent = sfile.parent(node)
        while parent is not None and not isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda)):
            if isinstance(parent, ast.Try) and child in parent.body \
                    and self._catches_rpc_errors(parent):
                return True
            child = parent
            parent = sfile.parent(parent)
        return False

    def _catches_rpc_errors(self, node: ast.Try) -> bool:
        for handler in node.handlers:
            if handler.type is None:
                return True
            types = handler.type.elts \
                if isinstance(handler.type, ast.Tuple) else [handler.type]
            for t in types:
                name = dotted(t)
                if name is not None \
                        and name.split(".")[-1] in _PROTECTIVE_EXCEPTIONS:
                    return True
        return False

    def _escapes_to_process(
        self,
        fn: FunctionInfo,
        depth: int,
        seen: Set[str],
    ) -> Optional[List[FunctionInfo]]:
        """Unprotected caller chain from ``fn`` up to a sim.process
        target, or None if every path hits a try or leaves the graph."""
        if fn.qualname in seen or depth > 12:
            return None
        seen = seen | {fn.qualname}
        if fn.qualname in self.index.process_targets:
            return [fn]
        for caller, call_node in self.index.callers.get(fn.qualname, ()):
            caller_file = self.index.file_by_path.get(caller.path)
            if caller_file is None:
                continue
            if self._protected(caller_file, call_node):
                continue
            chain = self._escapes_to_process(caller, depth + 1, seen)
            if chain is not None:
                return [fn, *chain]
        return None

    # -- pass C: digest-purity taint -----------------------------------

    _DIGEST_SEED_CLASSES = frozenset({"History", "OpRecord", "FinalState"})
    _DIGEST_SEED_NAMES = frozenset({"digest", "to_bytes", "to_line"})

    def check_digest_taint(self) -> None:
        seeds = [
            info for info in self.index.functions.values()
            if not (self.index.file_by_path.get(info.path) is None
                    or self.index.file_by_path[info.path].call_site_only)
            and (info.cls in self._DIGEST_SEED_CLASSES
                 or info.name in self._DIGEST_SEED_NAMES
                 or info.name.endswith("_digest"))
        ]
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for seed in seeds:
            origin.setdefault(seed.qualname, seed.qualname)
            queue.append(seed.qualname)
        while queue:
            qual = queue.pop()
            for callee in sorted(self.index.callees.get(qual, ())):
                if callee not in origin:
                    origin[callee] = origin[qual]
                    queue.append(callee)
        for qual in sorted(origin):
            info = self.index.functions.get(qual)
            if info is None:
                continue
            sfile = self.index.file_by_path.get(info.path)
            if sfile is None or sfile.call_site_only:
                continue
            for node, label in self._nondeterminism_in(info):
                self._flag(
                    "digest-taint", sfile, node,
                    f"{label} inside the golden-digest closure: "
                    f"{info.qualname} is reachable from "
                    f"{origin[qual]}")

    def _nondeterminism_in(
            self, info: FunctionInfo) -> List[Tuple[ast.AST, str]]:
        found: List[Tuple[ast.AST, str]] = []
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted(node.func)
            if chain is None:
                continue
            tail2 = ".".join(chain.split(".")[-2:])
            if tail2 in _WALL_CLOCK:
                found.append((node, f"wall-clock read {chain}()"))
            elif chain.split(".")[0] == "random" and "." in chain:
                found.append(
                    (node, f"process-global randomness {chain}()"))
            elif chain == "hash":
                found.append((node, "builtin hash()"))
            elif chain.split(".")[-1] == "uuid4":
                found.append((node, f"random uuid {chain}()"))
        return found

    # -- driver --------------------------------------------------------

    def run(self) -> List[Violation]:
        self.check_conformance()
        self.check_yield_discipline()
        self.check_digest_taint()
        self.violations.sort(key=lambda v: (v.path, v.line, v.rule))
        return self.violations

    # -- wire-protocol table -------------------------------------------

    def method_table(self) -> List[Dict[str, object]]:
        """Rows for the generated docs table, sorted by method name."""
        registry: Dict[str, List[RegisterSite]] = {}
        for site in self.registers:
            # Test doubles re-register real methods; the canonical
            # table documents the shipped wire surface only.
            if site.method is not None and not site.sfile.call_site_only:
                registry.setdefault(site.method, []).append(site)
        callers: Dict[str, Set[str]] = {}
        test_only: Dict[str, Set[str]] = {}
        for call in self.calls:
            if call.method is None:
                continue
            bucket = test_only if call.sfile.call_site_only else callers
            bucket.setdefault(call.method, set()).add(call.sfile.module)
        rows: List[Dict[str, object]] = []
        for method in sorted(registry):
            sites = registry[method]
            src_callers = sorted(callers.get(method, ()))
            rows.append({
                "method": method,
                "handler": ", ".join(
                    sorted({s.handler_label() for s in sites})),
                "registered_in": ", ".join(
                    sorted({s.sfile.module for s in sites})),
                "callers": src_callers,
                "test_callers": sorted(test_only.get(method, ())),
            })
        return rows


# -- baseline ----------------------------------------------------------

def baseline_key(violation: Violation) -> Tuple[str, str, str]:
    """Line-number-free identity used for baseline matching."""
    return (violation.rule, _norm_path(violation.path), violation.message)


def _norm_path(path: str) -> str:
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def load_baseline(path: Union[str, Path]) -> Set[Tuple[str, str, str]]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return {(f["rule"], f["path"], f["message"])
            for f in data.get("findings", [])}


def write_baseline(path: Union[str, Path],
                   violations: Sequence[Violation]) -> None:
    findings = [
        {"rule": rule, "path": norm, "message": message}
        for rule, norm, message in sorted(
            {baseline_key(v) for v in violations})
    ]
    Path(path).write_text(
        json.dumps({"version": 1, "findings": findings}, indent=2)
        + "\n", encoding="utf-8")


# -- table rendering ---------------------------------------------------

_TABLE_BEGIN = ("<!-- BEGIN GENERATED RPC TABLE "
                "(python -m repro.analysis.protocol --table) -->")
_TABLE_END = "<!-- END GENERATED RPC TABLE -->"


def render_method_table(rows: Sequence[Dict[str, object]]) -> str:
    """Markdown table between stable markers, no line numbers."""
    lines = [
        _TABLE_BEGIN,
        "",
        "| method | handler | registered in | called from |",
        "|---|---|---|---|",
    ]
    for row in rows:
        callers = list(row["callers"])          # type: ignore[arg-type]
        test_callers = list(row["test_callers"])  # type: ignore[arg-type]
        if callers:
            called = ", ".join(f"`{c}`" for c in callers)
            if test_callers:
                called += " (+tests)"
        elif test_callers:
            called = "*tests only*"
        else:
            called = "*(dead)*"
        lines.append(
            f"| `{row['method']}` | `{row['handler']}` "
            f"| `{row['registered_in']}` | {called} |")
    lines += ["", _TABLE_END]
    return "\n".join(lines)


# -- public API --------------------------------------------------------

def build_analyzer(
    checked_paths: Sequence[Union[str, Path]],
    call_site_paths: Sequence[Union[str, Path]] = (),
) -> ProtocolAnalyzer:
    index = ProjectIndex.build(checked_paths, call_site_paths)
    return ProtocolAnalyzer(index)


def analyze_paths(
    checked_paths: Sequence[Union[str, Path]],
    call_site_paths: Sequence[Union[str, Path]] = (),
) -> LintReport:
    analyzer = build_analyzer(checked_paths, call_site_paths)
    report = LintReport(violations=analyzer.run(),
                        files_checked=len(analyzer.index.files))
    return report


def analyze_protocol_for_pytest(
    root: Union[str, Path],
    baseline: Optional[Union[str, Path]] = None,
) -> Tuple[List[Violation], str]:
    """Session-start entry point for the pytest plugin.

    Returns ``(new_findings, one_line_summary)`` where new findings
    are active (unwaived) violations not covered by the baseline.
    """
    root = Path(root)
    checked = [p for p in (root / "src" / "repro", root / "src")
               if p.is_dir()][:1]
    if not checked:
        checked = [root]
    call_roots = [p for p in (root / "tests", root / "benchmarks",
                              root / "examples") if p.is_dir()]
    analyzer = build_analyzer(checked, call_roots)
    violations = analyzer.run()
    known: Set[Tuple[str, str, str]] = set()
    if baseline is not None and Path(baseline).is_file():
        known = load_baseline(baseline)
    new = [v for v in violations
           if not v.waived and baseline_key(v) not in known]
    waived = sum(1 for v in violations if v.waived)
    baselined = len(violations) - waived - len(new)
    summary = (f"repro protocol analysis: "
               f"{len(analyzer.index.files)} file(s) indexed, "
               f"{len(new)} new finding(s), {baselined} baselined, "
               f"{waived} waived")
    return new, summary


def _default_roots() -> List[str]:
    for candidate in ("src/repro", "src"):
        if Path(candidate).is_dir():
            return [candidate]
    return ["."]


def _default_call_roots() -> List[str]:
    return [d for d in ("tests", "benchmarks", "examples")
            if Path(d).is_dir()]


_DEFAULT_BASELINE = "tests/analysis/protocol_baseline.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protocol",
        description="Interprocedural RPC/yield/digest protocol analyzer.")
    parser.add_argument(
        "paths", nargs="*",
        help="rule-checked roots (default: src/repro)")
    parser.add_argument(
        "--calls-from", action="append", default=None, metavar="PATH",
        help="extra roots whose call sites count for liveness but are "
             "never flagged (default: tests, benchmarks, examples)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON list")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline of accepted findings (default: "
             f"{_DEFAULT_BASELINE} when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--table", action="store_true",
                        help="print the generated wire-protocol table "
                             "and exit")
    parser.add_argument("--show-waived", action="store_true",
                        help="list waived and baselined findings too")
    args = parser.parse_args(argv)

    checked = args.paths or _default_roots()
    call_roots = args.calls_from if args.calls_from is not None \
        else _default_call_roots()
    analyzer = build_analyzer(checked, call_roots)

    if args.table:
        print(render_method_table(analyzer.method_table()))
        return 0

    violations = analyzer.run()

    baseline_path = args.baseline
    if baseline_path is None and Path(_DEFAULT_BASELINE).is_file():
        baseline_path = _DEFAULT_BASELINE
    baseline: Set[Tuple[str, str, str]] = set()
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = load_baseline(baseline_path)

    if args.write_baseline:
        target = baseline_path or _DEFAULT_BASELINE
        active = [v for v in violations if not v.waived]
        write_baseline(target, active)
        print(f"wrote {len(active)} finding(s) to {target}")
        return 0

    new = [v for v in violations
           if not v.waived and baseline_key(v) not in baseline]
    shown = violations if args.show_waived else new
    if args.json:
        print(json.dumps([v.__dict__ for v in shown], indent=2))
    else:
        for violation in shown:
            print(violation.render())
        waived = sum(1 for v in violations if v.waived)
        baselined = len(violations) - waived - len(new)
        print(f"{len(analyzer.index.files)} file(s) indexed, "
              f"{len(new)} new finding(s), {baselined} baselined, "
              f"{waived} waived")
    return min(len(new), 125)


if __name__ == "__main__":
    sys.exit(main())
