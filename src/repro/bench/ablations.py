"""Design-choice ablations called out in DESIGN.md §4.

Each function isolates one mechanism the paper argues for and measures
both sides of the trade:

* :func:`zk_bottleneck` — §III.E's three mitigation strategies (local
  cache, adaptive lease, changelog refresh) against the naive and the
  watch-storm alternatives.
* :func:`ablation_quorum` — R/W/N settings vs read/write latency.
* :func:`ablation_vnodes` — virtual-node count vs load balance (§III.B).
* :func:`ablation_persistence` — none/snapshot/WAL vs write latency and
  crash-recoverable data (§III.C).
* :func:`ablation_fanout` — parallel vs sequential replica writes, the
  mechanism behind Fig. 7(a).
"""

from __future__ import annotations

from ..core.cache import MappingCache, ZkLayout
from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.coordinator import QuorumCoordinator
from ..core.stats import summarize
from ..workloads.kv import PAPER_VALUE, paper_keys
from ..zk.server import ZkConfig
from .harness import FigureResult

__all__ = ["zk_bottleneck", "ablation_quorum", "ablation_vnodes",
           "ablation_persistence", "ablation_fanout", "table1"]


# ---------------------------------------------------------------------------
# ZooKeeper bottleneck (§III.E)
# ---------------------------------------------------------------------------
def _churn_run(adaptive: bool, use_changelog: bool, duration: float = 20.0,
               churn_period: float = 1.0, seed: int = 42) -> dict:
    """One observer cache against a churning mapping; returns read costs."""
    cluster = SednaCluster(n_nodes=3, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64, lease_base=1.0))
    cluster.start()
    observer = MappingCache(cluster.sim, cluster.ensemble.client("observer"),
                            cluster.config, adaptive=adaptive,
                            use_changelog=use_changelog)

    def boot():
        yield from observer.zk.connect()
        yield from observer.load_full()
        observer.start_lease_loop()
        return True

    cluster.run(boot())
    reads_before = observer.vnode_reads
    min_lease = {"value": observer.lease}

    def lease_sampler():
        while True:
            yield cluster.sim.timeout(0.1)
            min_lease["value"] = min(min_lease["value"], observer.lease)

    cluster.sim.process(lease_sampler(), name="lease-sampler")

    def churn():
        zk = cluster.ensemble.client("churner")
        yield from zk.connect()
        rounds = int(duration / churn_period)
        for r in range(rounds):
            vnode = (r * 7) % 64
            data, stat = yield from zk.get(ZkLayout.vnode(vnode))
            flipped = "node1" if data.decode() != "node1" else "node2"
            yield from zk.set(ZkLayout.vnode(vnode), flipped.encode(),
                              version=stat["version"])
            yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                 str(vnode).encode(), sequential=True)
            yield cluster.sim.timeout(churn_period)
        return True

    cluster.run(churn())
    cluster.settle(3.0)
    observer.stop()
    return {
        "vnode_reads": observer.vnode_reads - reads_before,
        "refreshes": observer.incremental_refreshes,
        "full_loads": observer.full_loads - 1,
        "final_lease": observer.lease,
        "min_lease": min_lease["value"],
    }


def _watch_storm(n_watchers: int = 9, changes: int = 10,
                 seed: int = 42) -> int:
    """What Sedna avoids: every node watching every vnode znode.

    Returns the watch-event messages the ensemble pushes for a handful
    of mapping changes — the 'uncontrollable network storm' of §III.E.
    """
    cluster = SednaCluster(n_nodes=3, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64))
    cluster.start()
    clients = [cluster.ensemble.client(f"watcher{i}")
               for i in range(n_watchers)]

    def hook_all(zk):
        yield from zk.connect()
        for v in range(64):
            yield from zk.get(ZkLayout.vnode(v), watch=lambda e: None)
        return True

    cluster.run_all([hook_all(zk) for zk in clients])
    sent_before = sum(s.watch_events_sent for s in cluster.ensemble.servers)

    def churn():
        zk = cluster.ensemble.client("churner")
        yield from zk.connect()
        for c in range(changes):
            yield from zk.set(ZkLayout.vnode(c), b"node1")
        return True

    cluster.run(churn())
    cluster.settle(1.0)
    return sum(s.watch_events_sent
               for s in cluster.ensemble.servers) - sent_before


def zk_bottleneck(duration: float = 20.0) -> FigureResult:
    """Compare the §III.E cache strategies plus the watch alternative."""
    naive = _churn_run(adaptive=False, use_changelog=False,
                       duration=duration)
    fixed = _churn_run(adaptive=False, use_changelog=True, duration=duration)
    adaptive = _churn_run(adaptive=True, use_changelog=True,
                          duration=duration)
    storm = _watch_storm()
    result = FigureResult(
        "§III.E", "ZooKeeper read-bottleneck mitigation strategies")
    result.totals = {
        "vnode reads — full reload each lease": float(naive["vnode_reads"]),
        "vnode reads — fixed lease + changelog": float(fixed["vnode_reads"]),
        "vnode reads — adaptive lease + changelog":
            float(adaptive["vnode_reads"]),
        "watch events for 10 changes x 9 watchers": float(storm),
    }
    result.expect(
        "changelog refresh reads far fewer vnodes than full reloads",
        fixed["vnode_reads"] * 5 < naive["vnode_reads"],
        f"{fixed['vnode_reads']} vs {naive['vnode_reads']}")
    result.expect(
        "adaptive lease shrinks under churn (and recovers after)",
        adaptive["min_lease"] < 1.0,
        f"min lease {adaptive['min_lease']:.2f}s from 1.0s base, "
        f"back to {adaptive['final_lease']:.2f}s when quiet")
    result.expect(
        "watches would storm (one event per watcher per change)",
        storm >= 9 * 10 * 0.8,
        f"{storm} watch events for 90 expected")
    result.notes.update(naive=naive, fixed=fixed, adaptive=adaptive,
                        watch_storm=storm)
    return result


# ---------------------------------------------------------------------------
# Quorum parameters (§III.C)
# ---------------------------------------------------------------------------
def _quorum_run(n: int, r: int, w: int, ops: int = 400,
                seed: int = 42) -> dict:
    cluster = SednaCluster(
        n_nodes=5, zk_size=3, seed=seed,
        config=SednaConfig(num_vnodes=64, replicas=n, read_quorum=r,
                           write_quorum=w))
    cluster.start()
    client = cluster.smart_client("q-bench")
    keys = paper_keys(ops, seed=seed)

    def run():
        yield from client.connect()
        for key in keys:
            yield from client.write_latest(key.decode(),
                                           PAPER_VALUE.decode())
        for key in keys:
            yield from client.read_latest(key.decode())
        return True

    cluster.run(run())
    return {
        "write": summarize(client.write_latencies),
        "read": summarize(client.read_latencies),
        "replica_writes": sum(n.replica_writes
                              for n in cluster.nodes.values()),
    }


def ablation_quorum(ops: int = 400) -> FigureResult:
    """R/W settings vs latency: writes pay for W, reads pay for R."""
    r2w2 = _quorum_run(3, 2, 2, ops)      # the paper's configuration
    r1w3 = _quorum_run(3, 1, 3, ops)      # read-optimised
    n5 = _quorum_run(5, 3, 3, ops)        # bigger quorum
    result = FigureResult("ablation", "Quorum parameters (N, R, W)")
    result.totals = {
        "N=3 R=2 W=2 write mean (ms)": r2w2["write"]["mean"] * 1e3,
        "N=3 R=2 W=2 read mean (ms)": r2w2["read"]["mean"] * 1e3,
        "N=3 R=1 W=3 write mean (ms)": r1w3["write"]["mean"] * 1e3,
        "N=3 R=1 W=3 read mean (ms)": r1w3["read"]["mean"] * 1e3,
        "N=5 R=3 W=3 write mean (ms)": n5["write"]["mean"] * 1e3,
        "N=3 replica writes": float(r2w2["replica_writes"]),
        "N=5 replica writes": float(n5["replica_writes"]),
    }
    result.expect(
        "W=3 writes wait for the slowest replica (slower than W=2)",
        r1w3["write"]["mean"] > r2w2["write"]["mean"],
        f"{r1w3['write']['mean']*1e3:.3f} vs {r2w2['write']['mean']*1e3:.3f} ms")
    result.expect(
        "R=1 reads return on the first reply (faster than R=2)",
        r1w3["read"]["mean"] < r2w2["read"]["mean"],
        f"{r1w3['read']['mean']*1e3:.3f} vs {r2w2['read']['mean']*1e3:.3f} ms")
    result.expect(
        "N=5 burns ~5/3 the replica work of N=3 for the same ops",
        n5["replica_writes"] > r2w2["replica_writes"] * 1.5,
        f"{n5['replica_writes']} vs {r2w2['replica_writes']} replica writes")
    return result


# ---------------------------------------------------------------------------
# Virtual-node count (§III.B)
# ---------------------------------------------------------------------------
def _vnode_run(num_vnodes: int, keys: int = 600, seed: int = 42) -> dict:
    # 4 nodes so coarse rings cannot divide evenly (5 vnodes / 4 nodes):
    # the imbalance the paper's virtual-node strategy exists to fix.
    cluster = SednaCluster(n_nodes=4, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=num_vnodes))
    cluster.start()
    client = cluster.smart_client("v-bench")
    workload = paper_keys(keys, seed=seed)

    def run():
        yield from client.connect()
        for key in workload:
            yield from client.write_latest(key.decode(),
                                           PAPER_VALUE.decode())
        return True

    cluster.run(run())
    cluster.settle(0.5)
    loads = sorted(len(node.store) for node in cluster.nodes.values())
    mean = sum(loads) / len(loads)
    return {"loads": loads, "spread": (loads[-1] - loads[0]) / mean}


def ablation_vnodes(keys: int = 600) -> FigureResult:
    """More virtual nodes -> finer, flatter load distribution (§III.B)."""
    few = _vnode_run(5, keys)
    some = _vnode_run(40, keys)
    many = _vnode_run(320, keys)
    result = FigureResult("ablation", "Virtual-node count vs load balance")
    result.totals = {
        "5 vnodes: relative spread": few["spread"],
        "40 vnodes: relative spread": some["spread"],
        "320 vnodes: relative spread": many["spread"],
    }
    result.expect(
        "hundreds of vnodes balance better than a handful",
        many["spread"] < few["spread"],
        f"{many['spread']:.2f} vs {few['spread']:.2f}")
    result.notes.update(few=few, some=some, many=many)
    return result


# ---------------------------------------------------------------------------
# Persistence strategy (§III.C)
# ---------------------------------------------------------------------------
def _persistence_run(kind: str, ops: int = 300, seed: int = 42) -> dict:
    cluster = SednaCluster(
        n_nodes=3, zk_size=3, seed=seed,
        config=SednaConfig(num_vnodes=32, persistence=kind,
                           snapshot_interval=1.0),
        zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    client = cluster.smart_client("p-bench")
    keys = paper_keys(ops, seed=seed)

    def run():
        yield from client.connect()
        for key in keys:
            yield from client.write_latest(key.decode(),
                                           PAPER_VALUE.decode())
        return True

    cluster.run(run())
    cluster.settle(2.0)  # let a snapshot interval pass
    # Whole-cluster power loss.
    total_before = sum(len(n.store) for n in cluster.nodes.values())
    for name in cluster.node_names:
        cluster.crash_node(name)
    cluster.settle(4.0)
    for name in cluster.node_names:
        cluster.restart_node(name)
    total_after = sum(len(n.store) for n in cluster.nodes.values())
    return {
        "write_mean": summarize(client.write_latencies)["mean"],
        "recovered_fraction": total_after / max(1, total_before),
    }


def ablation_persistence(ops: int = 300) -> FigureResult:
    """'Different speed and availability according users' needs'."""
    none = _persistence_run("none", ops)
    snap = _persistence_run("snapshot", ops)
    wal = _persistence_run("wal", ops)
    result = FigureResult("ablation",
                          "Persistence strategy: speed vs availability")
    result.totals = {
        "none: write mean (ms)": none["write_mean"] * 1e3,
        "snapshot: write mean (ms)": snap["write_mean"] * 1e3,
        "wal: write mean (ms)": wal["write_mean"] * 1e3,
        "none: recovered after power loss": none["recovered_fraction"],
        "snapshot: recovered after power loss": snap["recovered_fraction"],
        "wal: recovered after power loss": wal["recovered_fraction"],
    }
    result.expect(
        "WAL writes slower than no persistence",
        wal["write_mean"] > none["write_mean"],
        f"{wal['write_mean']*1e3:.3f} vs {none['write_mean']*1e3:.3f} ms")
    result.expect(
        "snapshot adds no per-write cost",
        snap["write_mean"] < wal["write_mean"],
        f"{snap['write_mean']*1e3:.3f} vs {wal['write_mean']*1e3:.3f} ms")
    result.expect(
        "WAL recovers everything after whole-cluster power loss",
        wal["recovered_fraction"] >= 0.999,
        f"{wal['recovered_fraction']:.1%}")
    result.expect(
        "no persistence recovers nothing",
        none["recovered_fraction"] < 0.01,
        f"{none['recovered_fraction']:.1%}")
    result.expect(
        "snapshot recovers most data (bounded loss window)",
        snap["recovered_fraction"] > 0.9,
        f"{snap['recovered_fraction']:.1%}")
    return result


# ---------------------------------------------------------------------------
# Parallel vs sequential replica fan-out (the Fig. 7(a) mechanism)
# ---------------------------------------------------------------------------
def ablation_fanout(ops: int = 400, seed: int = 42) -> FigureResult:
    """Write 3 replicas in parallel (Sedna) vs one-by-one (memcached
    client style), on the *same* cluster and replica plane."""
    cluster = SednaCluster(n_nodes=5, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64))
    cluster.start()
    parallel_client = cluster.smart_client("fan-parallel")
    seq_client = cluster.smart_client("fan-seq")
    keys = paper_keys(ops, seed=seed)

    def run_parallel():
        yield from parallel_client.connect()
        for key in keys:
            yield from parallel_client.write_latest(f"p-{key.decode()}",
                                                    PAPER_VALUE.decode())
        return True

    def run_sequential():
        """Same replica writes, issued one at a time."""
        yield from seq_client.connect()
        coord: QuorumCoordinator = seq_client.coordinator
        t_list = seq_client.write_latencies
        for key in keys:
            encoded_key = f"seq\x1fdefault\x1fs-{key.decode()}"
            ts = seq_client._timestamp()
            vnode, replicas = coord.cache.replicas_for_key(encoded_key)
            t0 = cluster.sim.now
            for replica in replicas:
                payload = {"vnode": vnode, "key": encoded_key,
                           "value": PAPER_VALUE.decode(), "ts": ts,
                           "source": seq_client.name, "mode": "latest"}
                yield from coord.rpc.call(replica, "replica.write", payload,
                                          timeout=1.0)
            t_list.append(cluster.sim.now - t0)
        return True

    cluster.run(run_parallel())
    cluster.run(run_sequential())
    par = summarize(parallel_client.write_latencies)
    seq = summarize(seq_client.write_latencies)
    result = FigureResult("ablation",
                          "Replica fan-out: parallel vs sequential")
    result.totals = {
        "parallel write mean (ms)": par["mean"] * 1e3,
        "sequential write mean (ms)": seq["mean"] * 1e3,
    }
    speedup = seq["mean"] / par["mean"]
    result.expect(
        "parallel fan-out is at least 1.8x faster than sequential",
        speedup > 1.8,
        f"speedup {speedup:.2f}x")
    result.notes["speedup"] = speedup
    return result


# ---------------------------------------------------------------------------
# Table I — technique summary, verified live
# ---------------------------------------------------------------------------
def table1() -> FigureResult:
    """Regenerate Table I: each technique row is checked against the
    living system, with the implementing module recorded."""
    cluster = SednaCluster(n_nodes=4, zk_size=3,
                           config=SednaConfig(num_vnodes=32),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    client = cluster.smart_client("t1")

    def seed():
        yield from client.connect()
        for i in range(20):
            yield from client.write_latest(f"t1-{i}", i)
        return True

    cluster.run(seed())
    cluster.settle(0.5)
    result = FigureResult("Table I", "Summary of Sedna techniques")

    # Partitioning: consistent hashing, incremental scalability.
    counts = [len(n.cache.ring.vnodes_of(name))
              for name, n in cluster.nodes.items()]
    result.expect(
        "Partitioning — consistent hashing (repro.core.hashring)",
        max(counts) - min(counts) <= 1,
        f"vnode counts {counts}")

    # Replication: eventual consistency via quorum.
    from repro.core.types import FullKey
    replicated = all(
        cluster.total_replicas_of(FullKey.of(f"t1-{i}").encoded()) == 3
        for i in range(20))
    result.expect(
        "Replication — quorum / eventual consistency (repro.core.coordinator)",
        replicated, "every key on N=3 replicas")

    # Node management: ZooKeeper sub-cluster, no single point of failure.
    cluster.ensemble.crash("zk0")  # kill the ZK *leader*
    cluster.settle(6.0)
    leader = cluster.ensemble.leader()
    result.expect(
        "Node management — ZooKeeper sub-cluster survives leader loss "
        "(repro.zk.ensemble)",
        leader is not None and leader.name != "zk0",
        f"new leader {leader.name if leader else None}")

    # Lock-free read/write.
    def concurrent_writes():
        a = cluster.smart_client("t1a")
        b = cluster.smart_client("t1b")

        def w(c, v):
            yield from c.connect()
            status = yield from c.write_latest("contend", v)
            return status

        return cluster.run_all([w(a, "x"), w(b, "y")])

    statuses = concurrent_writes()
    result.expect(
        "Read & write — lock-free timestamped writes (repro.storage.versioned)",
        all(s in ("ok", "outdated") for s in statuses),
        f"concurrent statuses {statuses}")

    # Failure detection: heartbeat + lazy recovery.
    cluster.crash_node("node3")
    cluster.settle(5.0)
    zk_leader = cluster.ensemble.leader()
    gone = "node3" not in zk_leader.tree.get_children("/sedna/real_nodes")
    result.expect(
        "Failure detection — heartbeat expiry in ZooKeeper (repro.zk.session)",
        gone, "dead node's ephemeral removed")

    # Persistency strategy: pluggable.
    from repro.persistence.strategy import make_strategy
    from repro.persistence.disk import SimDisk
    kinds = [make_strategy(k, SimDisk(), "n", 1.0).name
             for k in ("none", "snapshot", "wal")]
    result.expect(
        "Persistency — periodic flush or WAL (repro.persistence.strategy)",
        kinds == ["none", "snapshot", "wal"], str(kinds))
    return result
