"""Benchmark harness utilities: series, ASCII plots, expectation checks.

The paper's evaluation figures plot *cumulative time spent (ms)* against
*number of operations* (Fig. 7, Fig. 8).  The harness reproduces each
figure as a :class:`FigureResult`: the same series, the paper's
qualitative expectations as machine-checked assertions, and an ASCII
rendering for the bench log.

Scale: ``SEDNA_BENCH_OPS`` (default 10,000; the paper runs 60,000).
The time model is per-operation, so the series are straight lines and
every comparison (who wins, by what factor, where crossovers fall) is
invariant to the op count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["bench_ops", "FigureResult", "ascii_chart", "format_table"]


def bench_ops(default: int = 10_000) -> int:
    """Operation count for figure benches (env: SEDNA_BENCH_OPS)."""
    return int(os.environ.get("SEDNA_BENCH_OPS", default))


@dataclass
class FigureResult:
    """One regenerated figure: series, totals, and checked expectations."""

    figure: str
    title: str
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    totals: dict[str, float] = field(default_factory=dict)
    expectations: list[tuple[str, bool, str]] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def expect(self, name: str, ok: bool, detail: str = "") -> None:
        """Record one paper-shape expectation (checked by the bench)."""
        self.expectations.append((name, bool(ok), detail))

    @property
    def all_expectations_met(self) -> bool:
        return all(ok for _n, ok, _d in self.expectations)

    def failed_expectations(self) -> list[str]:
        return [f"{name}: {detail}" for name, ok, detail in self.expectations
                if not ok]

    def render(self) -> str:
        """Human-readable block for the bench log."""
        lines = [f"== {self.figure}: {self.title} =="]
        if self.series:
            lines.append(ascii_chart(self.series))
        if self.totals:
            lines.append(format_table(
                [(k, f"{v:,.1f}") for k, v in sorted(self.totals.items())],
                headers=("series", "total (ms)")))
        for name, ok, detail in self.expectations:
            mark = "PASS" if ok else "FAIL"
            lines.append(f"  [{mark}] {name}" + (f" — {detail}" if detail else ""))
        return "\n".join(lines)


_GLYPHS = "*o+x#@%&"


def ascii_chart(series: dict[str, list[tuple[float, float]]],
                width: int = 68, height: int = 16) -> str:
    """Plot (x, y) series on a character grid (the bench-log figure)."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xmax = max(x for x, _ in points) or 1
    ymax = max(y for _, y in points) or 1
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (label, pts) in enumerate(sorted(series.items())):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} {label}")
        for x, y in pts:
            col = min(width - 1, int(x / xmax * (width - 1)))
            row = min(height - 1, int(y / ymax * (height - 1)))
            grid[height - 1 - row][col] = glyph
    out = []
    for i, row in enumerate(grid):
        y_label = ""
        if i == 0:
            y_label = f"{ymax:,.0f} ms"
        elif i == height - 1:
            y_label = "0"
        out.append("".join(row) + "  " + y_label)
    out.append("-" * width)
    out.append(f"0 .. {xmax:,.0f} ops")
    out.append("   ".join(legend))
    return "\n".join(out)


def format_table(rows: list[tuple], headers: tuple = ()) -> str:
    """Fixed-width text table."""
    str_rows = [tuple(str(c) for c in row) for row in rows]
    if headers:
        str_rows.insert(0, tuple(str(h) for h in headers))
    if not str_rows:
        return "(empty)"
    widths = [max(len(row[i]) for row in str_rows)
              for i in range(len(str_rows[0]))]
    lines = []
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if headers and i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
