"""Regeneration of the paper's evaluation figures (§VI.A).

Each ``figN`` function builds fresh simulated worlds, replays the
paper's workload, and returns a
:class:`~repro.bench.harness.FigureResult` whose expectations encode
the *shape* the paper reports (who wins, roughly by how much).  We do
not chase absolute milliseconds — the substrate is a calibrated
simulator, not the authors' 2012 testbed — but every qualitative claim
of the figures is asserted.
"""

from __future__ import annotations

from ..baselines.memcached import MemcachedCluster
from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.stats import LatencySeries
from ..net.latency import LanGigabit
from ..net.simulator import AllOf, Simulator
from ..net.transport import Network
from ..workloads.kv import PAPER_VALUE, paper_keys
from .harness import FigureResult, bench_ops

__all__ = ["sedna_write_read", "memcached_write_read", "fig7a", "fig7b",
           "fig8"]


def _sample_every(ops: int) -> int:
    return max(1, ops // 25)


def sedna_write_read(ops: int, seed: int = 42, n_nodes: int = 9,
                     n_clients: int = 1) -> dict:
    """Run the §VI.A Sedna load test: ``ops`` writes then ``ops`` reads
    per client, 20-byte keys/values, smart (zero-hop) clients.

    Returns per-phase cumulative-ms series (averaged over clients) and
    totals, plus the aggregate wall (simulated) duration.
    """
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(num_vnodes=512), seed=seed)
    cluster.start()
    every = _sample_every(ops)
    clients = [cluster.smart_client(f"bench{i}") for i in range(n_clients)]
    keyspaces = [paper_keys(ops, seed=seed + i) for i in range(n_clients)]
    series = {i: (LatencySeries("write"), LatencySeries("read"))
              for i in range(n_clients)}

    def run_one(i):
        client = clients[i]
        wseries, rseries = series[i]
        yield from client.connect()
        for key in keyspaces[i]:
            yield from client.write_latest(key.decode(), PAPER_VALUE.decode())
            wseries.record(client.write_latencies[-1], every=every)
        for key in keyspaces[i]:
            yield from client.read_latest(key.decode())
            rseries.record(client.read_latencies[-1], every=every)
        wseries.finish()
        rseries.finish()

    t0 = cluster.sim.now
    procs = [cluster.sim.process(run_one(i), name=f"bench{i}")
             for i in range(n_clients)]
    cluster.sim.run(until=AllOf(cluster.sim, procs))
    duration = cluster.sim.now - t0

    def avg_points(idx):
        base = series[0][idx].points
        return [(n, sum(series[i][idx].points[j][1]
                        for i in range(n_clients)) / n_clients)
                for j, (n, _t) in enumerate(base)]

    return {
        "write_points": avg_points(0),
        "read_points": avg_points(1),
        "write_total_ms": sum(s[0].total_ms for s in series.values())
        / n_clients,
        "read_total_ms": sum(s[1].total_ms for s in series.values())
        / n_clients,
        "duration_s": duration,
        "ops_per_client": ops,
        "clients": n_clients,
        "failures": sum(c.failures for c in clients),
    }


def memcached_write_read(ops: int, copies: int, seed: int = 42,
                         n_servers: int = 9) -> dict:
    """Run the §VI.A memcached comparison: same keys, ``copies`` copies
    written/read *sequentially* per op by a client-side sharding client."""
    sim = Simulator()
    network = Network(sim, latency=LanGigabit(seed=seed))
    cluster = MemcachedCluster(sim, network, size=n_servers)
    client = cluster.client("mc-bench")
    keys = paper_keys(ops, seed=seed)
    every = _sample_every(ops)
    wseries = LatencySeries("write")
    rseries = LatencySeries("read")

    def run():
        for key in keys:
            yield from client.set(key, PAPER_VALUE, copies=copies)
            wseries.record(client.write_latencies[-1], every=every)
        for key in keys:
            yield from client.get(key, copies=copies)
            rseries.record(client.read_latencies[-1], every=every)
        wseries.finish()
        rseries.finish()
        return True

    proc = sim.process(run(), name="mc-bench")
    sim.run(until=proc)
    return {
        "write_points": wseries.points,
        "read_points": rseries.points,
        "write_total_ms": wseries.total_ms,
        "read_total_ms": rseries.total_ms,
        "failures": client.failures,
    }


def _linearity(points: list[tuple[int, float]]) -> float:
    """Max relative deviation of the cumulative curve from linearity —
    the paper's 'Sedna performance is quite stable' claim."""
    if len(points) < 3:
        return 0.0
    n_end, t_end = points[-1]
    worst = 0.0
    for n, t in points:
        expected = t_end * (n / n_end)
        if expected > 0:
            worst = max(worst, abs(t - expected) / expected)
    return worst


def fig7a(ops: int | None = None, seed: int = 42) -> FigureResult:
    """Fig. 7(a): Memcached writing/reading 3 copies sequentially vs
    Sedna's 3 parallel replicas.  Expectation: Sedna wins both."""
    ops = ops if ops is not None else bench_ops()
    sedna = sedna_write_read(ops, seed=seed)
    mc3 = memcached_write_read(ops, copies=3, seed=seed)
    result = FigureResult(
        "Fig.7(a)", "W/R cumulative time — Memcached(3x sequential) vs Sedna")
    result.series = {
        "sedna write": sedna["write_points"],
        "sedna read": sedna["read_points"],
        "memcached(3) write": mc3["write_points"],
        "memcached(3) read": mc3["read_points"],
    }
    result.totals = {
        "sedna write": sedna["write_total_ms"],
        "sedna read": sedna["read_total_ms"],
        "memcached(3) write": mc3["write_total_ms"],
        "memcached(3) read": mc3["read_total_ms"],
    }
    result.expect(
        "sedna writes beat sequential 3-copy memcached writes",
        sedna["write_total_ms"] < mc3["write_total_ms"],
        f"{sedna['write_total_ms']:,.0f} vs {mc3['write_total_ms']:,.0f} ms")
    result.expect(
        "sedna reads beat sequential 3-copy memcached reads",
        sedna["read_total_ms"] < mc3["read_total_ms"],
        f"{sedna['read_total_ms']:,.0f} vs {mc3['read_total_ms']:,.0f} ms")
    result.expect(
        "no operation failures", sedna["failures"] == mc3["failures"] == 0)
    result.notes["speedup_write"] = (mc3["write_total_ms"]
                                     / sedna["write_total_ms"])
    return result


def fig7b(ops: int | None = None, seed: int = 42) -> FigureResult:
    """Fig. 7(b): Memcached writing each datum once vs Sedna.

    Expectation: "Sedna performance is quite stable, and slightly
    slower than original write-once Memcached performance"."""
    ops = ops if ops is not None else bench_ops()
    sedna = sedna_write_read(ops, seed=seed)
    mc1 = memcached_write_read(ops, copies=1, seed=seed)
    result = FigureResult(
        "Fig.7(b)", "W/R cumulative time — Memcached(write-once) vs Sedna")
    result.series = {
        "sedna write": sedna["write_points"],
        "sedna read": sedna["read_points"],
        "memcached(1) write": mc1["write_points"],
        "memcached(1) read": mc1["read_points"],
    }
    result.totals = {
        "sedna write": sedna["write_total_ms"],
        "sedna read": sedna["read_total_ms"],
        "memcached(1) write": mc1["write_total_ms"],
        "memcached(1) read": mc1["read_total_ms"],
    }
    ratio_w = sedna["write_total_ms"] / mc1["write_total_ms"]
    result.expect(
        "sedna slightly slower than write-once memcached",
        1.0 < ratio_w < 2.5,
        f"sedna/mc1 write ratio {ratio_w:.2f} (3 parallel replicas vs 1 write)")
    stability = _linearity(sedna["write_points"])
    result.expect(
        "sedna performance is stable (linear cumulative curve)",
        stability < 0.15,
        f"max deviation from linearity {stability:.1%}")
    result.notes["ratio_write"] = ratio_w
    result.notes["ratio_read"] = (sedna["read_total_ms"]
                                  / mc1["read_total_ms"])
    return result


def fig8(ops: int | None = None, seed: int = 42) -> FigureResult:
    """Fig. 8: one client vs nine concurrent clients.

    Expectations: per-client time rises under contention ("the
    individual client's speed slower"), aggregate throughput rises
    ("the overall throughput is larger than one client")."""
    ops = ops if ops is not None else max(1, bench_ops() // 2)
    one = sedna_write_read(ops, seed=seed, n_clients=1)
    nine = sedna_write_read(ops, seed=seed, n_clients=9)
    result = FigureResult("Fig.8", "R/W speed, nine clients vs one client")
    result.series = {
        "one client write": one["write_points"],
        "one client read": one["read_points"],
        "nine clients write": nine["write_points"],
        "nine clients read": nine["read_points"],
    }
    result.totals = {
        "one client write": one["write_total_ms"],
        "one client read": one["read_total_ms"],
        "nine clients write (per client)": nine["write_total_ms"],
        "nine clients read (per client)": nine["read_total_ms"],
    }
    result.expect(
        "per-client writes slower with nine concurrent clients",
        nine["write_total_ms"] > one["write_total_ms"] * 1.1,
        f"{nine['write_total_ms']:,.0f} vs {one['write_total_ms']:,.0f} ms")
    agg_one = 2 * ops / one["duration_s"]
    agg_nine = 9 * 2 * ops / nine["duration_s"]
    result.expect(
        "aggregate throughput higher with nine clients",
        agg_nine > agg_one * 2,
        f"{agg_nine:,.0f} vs {agg_one:,.0f} ops/s")
    result.notes["slowdown_per_client"] = (nine["write_total_ms"]
                                           / one["write_total_ms"])
    result.notes["throughput_gain"] = agg_nine / agg_one
    return result
