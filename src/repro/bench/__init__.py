"""Benchmark harness: one runner per paper table/figure plus ablations.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
recorded paper-vs-measured outcomes.
"""

from .harness import FigureResult, ascii_chart, bench_ops, format_table
from .figures import fig7a, fig7b, fig8, memcached_write_read, sedna_write_read
from .usecase import MicroblogSearchEngine, fig4_ripple, fig6_freshness
from .ablations import (ablation_fanout, ablation_persistence,
                        ablation_quorum, ablation_vnodes, table1,
                        zk_bottleneck)

__all__ = [
    "FigureResult", "ascii_chart", "bench_ops", "format_table",
    "fig7a", "fig7b", "fig8", "memcached_write_read", "sedna_write_read",
    "MicroblogSearchEngine", "fig4_ripple", "fig6_freshness",
    "ablation_fanout", "ablation_persistence", "ablation_quorum",
    "ablation_vnodes", "table1", "zk_bottleneck",
]

from .scalability import scalability, throughput_at_size

__all__ += ["scalability", "throughput_at_size"]

from .bootcost import boot_cost, boot_cost_at

__all__ += ["boot_cost", "boot_cost_at"]

from .triggerperf import trigger_latency, trigger_latency_at

__all__ += ["trigger_latency", "trigger_latency_at"]

from .relatedwork import (ablation_membership, ablation_routing,
                          ablation_write_protocol)

__all__ += ["ablation_membership", "ablation_routing",
            "ablation_write_protocol"]

from .chaossweep import chaos_sweep

__all__ += ["chaos_sweep"]
