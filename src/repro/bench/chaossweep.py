"""Chaos sweep bench: safety invariants across fault profiles.

Runs the deterministic chaos harness (``repro.chaos``) over every
fault profile at several seeds, charts completed operations per run,
and asserts the paper-shape expectations: zero invariant violations
everywhere, full fault-kind coverage across the sweep, and a
byte-identical replay digest for a fixed seed.
"""

from __future__ import annotations

from ..chaos.runner import ChaosRunner
from ..chaos.schedule import PROFILES
from .harness import FigureResult

__all__ = ["chaos_sweep"]


def chaos_sweep(seeds: tuple[int, ...] = (1, 2, 3),
                duration: float = 6.0) -> FigureResult:
    """The chaos harness over ``PROFILES`` × ``seeds``."""
    result = FigureResult(
        "chaos", "Fault-schedule sweep: invariants by profile")
    kinds_seen: set[str] = set()
    digests: dict[tuple[int, str], str] = {}
    for profile in PROFILES:
        points = []
        anomalies = 0
        ops = 0
        for i, seed in enumerate(seeds):
            report = ChaosRunner(seed=seed, profile=profile,
                                 duration=duration).run()
            points.append((i + 1, float(len(report.history))))
            anomalies += len(report.anomalies)
            ops += len(report.history)
            kinds_seen |= report.schedule.kinds
            digests[(seed, profile)] = report.digest
        result.series[profile] = points
        result.totals[f"{profile} ops"] = float(ops)
        result.expect(f"{profile}: no invariant violations", anomalies == 0,
                      f"{anomalies} anomalies across seeds {seeds}")
    wanted = {"crash", "restart", "partition", "heal",
              "loss_start", "loss_stop"}
    result.expect("fault coverage", wanted <= kinds_seen,
                  f"missing {sorted(wanted - kinds_seen)}")
    replay = ChaosRunner(seed=seeds[0], profile="mixed",
                         duration=duration).run()
    result.expect("replay digest identical",
                  replay.digest == digests[(seeds[0], "mixed")],
                  "same seed must reproduce the same history")
    result.notes["digest"] = digests[(seeds[0], "mixed")]
    return result
