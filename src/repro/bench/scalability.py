"""Scalability bench: aggregate throughput vs cluster size.

Not a paper figure — the paper *claims* incremental scalability
("designed especially for huge size data centers", §I; Table I row
"Partitioning → Incremental Scalability") but never plots it.  This
bench quantifies the claim on the reproduction: total write/read
throughput with one pinned client per node as the fleet grows.
Perfect scaling doubles throughput per doubling; the expectation we
assert is the qualitative one (bigger fleets sustain materially more
aggregate throughput, and the hierarchical ZooKeeper layer does not
flatten the curve).
"""

from __future__ import annotations

from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..net.simulator import AllOf
from ..workloads.kv import PAPER_VALUE, paper_keys
from .harness import FigureResult

__all__ = ["throughput_at_size", "scalability"]


def throughput_at_size(n_nodes: int, ops_per_client: int = 400,
                       seed: int = 42) -> dict:
    """Aggregate ops/s with one smart client per node."""
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64 * n_nodes))
    cluster.start()
    clients = [cluster.smart_client(f"scale{i}") for i in range(n_nodes)]
    keyspaces = [paper_keys(ops_per_client, seed=seed + i)
                 for i in range(n_nodes)]

    def run_one(i):
        client = clients[i]
        yield from client.connect()
        for key in keyspaces[i]:
            yield from client.write_latest(key.decode(),
                                           PAPER_VALUE.decode())
        for key in keyspaces[i]:
            yield from client.read_latest(key.decode())
        return True

    t0 = cluster.sim.now
    procs = [cluster.sim.process(run_one(i)) for i in range(n_nodes)]
    cluster.sim.run(until=AllOf(cluster.sim, procs))
    duration = cluster.sim.now - t0
    total_ops = 2 * ops_per_client * n_nodes
    return {
        "nodes": n_nodes,
        "throughput": total_ops / duration,
        "duration_s": duration,
        "failures": sum(c.failures for c in clients),
    }


def scalability(ops_per_client: int = 400) -> FigureResult:
    """Aggregate throughput at 3, 6 and 12 Sedna nodes."""
    small = throughput_at_size(3, ops_per_client)
    medium = throughput_at_size(6, ops_per_client)
    large = throughput_at_size(12, ops_per_client)
    result = FigureResult("scalability",
                          "Aggregate throughput vs cluster size")
    result.totals = {
        "3 nodes (ops/s)": small["throughput"],
        "6 nodes (ops/s)": medium["throughput"],
        "12 nodes (ops/s)": large["throughput"],
    }
    result.expect(
        "throughput grows with cluster size",
        large["throughput"] > medium["throughput"] > small["throughput"],
        f"{small['throughput']:,.0f} -> {medium['throughput']:,.0f} -> "
        f"{large['throughput']:,.0f} ops/s")
    result.expect(
        "scaling efficiency stays above 50% per doubling",
        large["throughput"] > 1.5 * medium["throughput"] * 0.5
        and medium["throughput"] > 1.5 * small["throughput"] * 0.5,
        "hierarchical status layer must not flatten the curve")
    result.expect(
        "no failures at any size",
        small["failures"] == medium["failures"] == large["failures"] == 0)
    result.notes.update(small=small, medium=medium, large=large)
    return result
