"""Trigger-path latency ablation (§IV.C scanner parameters).

"Once Sedna started, it will start several threads according to the
data size to scan the Dirty and Monitored fields sequentially" — the
scan cadence bounds how stale a trigger can observe a write.  This
bench streams events into a monitored table and measures the
write → activation delay under different ``scan_interval`` settings.
"""

from __future__ import annotations

from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.stats import summarize
from ..triggers.api import Action, DataHooks, Job, TriggerOutput
from ..triggers.runtime import TriggerRuntime
from .harness import FigureResult

__all__ = ["trigger_latency_at", "trigger_latency"]


def trigger_latency_at(scan_interval: float, events: int = 150,
                       seed: int = 42) -> dict:
    """Stream ``events`` writes; measure write->activation latency."""
    cluster = SednaCluster(
        n_nodes=3, zk_size=3, seed=seed,
        config=SednaConfig(num_vnodes=32, scan_interval=scan_interval,
                           trigger_interval=0.0))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    write_times: dict[str, float] = {}
    latencies: list[float] = []

    class Probe(Action):
        def action(self, key, values, result):
            t0 = write_times.get(key.key)
            if t0 is not None:
                latencies.append(cluster.sim.now - t0)

    runtime.submit(Job("probe").with_action(Probe())
                   .monitor(DataHooks(dataset="d", table="events"))
                   .output_to(TriggerOutput("d", "out")))
    client = cluster.client()

    def stream():
        for i in range(events):
            key = f"e{i}"
            write_times[key] = cluster.sim.now
            yield from client.write_latest(key, i, table="events",
                                           dataset="d")
            yield cluster.sim.timeout(0.01)
        return True

    cluster.run(stream())
    cluster.settle(2.0)
    return {"scan_interval": scan_interval,
            "fired": len(latencies),
            "latency": summarize(latencies)}


def trigger_latency() -> FigureResult:
    """Write->activation latency vs scanner cadence."""
    fast = trigger_latency_at(0.01)
    medium = trigger_latency_at(0.05)
    slow = trigger_latency_at(0.25)
    result = FigureResult("§IV.C", "Trigger latency vs scan interval")
    result.totals = {
        "scan 10ms: p95 latency (ms)": fast["latency"]["p95"] * 1e3,
        "scan 50ms: p95 latency (ms)": medium["latency"]["p95"] * 1e3,
        "scan 250ms: p95 latency (ms)": slow["latency"]["p95"] * 1e3,
    }
    result.expect(
        "every event fires exactly once at every cadence",
        fast["fired"] == medium["fired"] == slow["fired"] == 150,
        f"{fast['fired']}/{medium['fired']}/{slow['fired']} of 150")
    result.expect(
        "faster scanning lowers trigger latency",
        fast["latency"]["p95"] < slow["latency"]["p95"],
        f"{fast['latency']['p95']*1e3:.1f} vs "
        f"{slow['latency']['p95']*1e3:.1f} ms p95")
    result.expect(
        "latency is bounded by roughly one scan interval",
        medium["latency"]["p95"] < 0.05 * 3 + 0.01,
        f"p95 {medium['latency']['p95']*1e3:.1f} ms at 50 ms cadence")
    result.notes.update(fast=fast, medium=medium, slow=slow)
    return result
