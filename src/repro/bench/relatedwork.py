"""§VII design-argument ablations.

The related-work section justifies three Sedna design choices against
the Dynamo/Cassandra/Chord lineage.  Each claim gets a measurement:

* **zero-hop vs multi-hop routing** — "we avoid routing requests
  through multiple nodes like Chord use";
* **ZooKeeper membership vs gossip** — "avoid Gossip mechanism to
  maintain a consistent cluster status like Cassandra and Redis does";
* **timestamp LWW vs read-before-write** — "The write operation in
  Dynamo also requires a read to be performed for managing the vector
  timestamps, this would limit the performance when systems need to
  handle a very high write throughput."
"""

from __future__ import annotations

from ..baselines.chord import ChordClient, ChordNode, ChordRing
from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.stats import summarize
from ..gossip.membership import GossipCluster
from ..net.latency import LanGigabit
from ..net.simulator import Simulator
from ..net.transport import Network, estimate_size
from ..workloads.kv import PAPER_VALUE, paper_keys
from .harness import FigureResult

__all__ = ["ablation_routing", "ablation_membership",
           "ablation_write_protocol"]


def ablation_routing(ops: int = 300, n_nodes: int = 16,
                     seed: int = 42) -> FigureResult:
    """Zero-hop (Sedna) vs Chord multi-hop lookup latency."""
    # Chord side.
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=seed))
    names = [f"ch{i}" for i in range(n_nodes)]
    ring = ChordRing(names)
    for name in names:
        ChordNode(sim, net, name, ring)
    chord_client = ChordClient(sim, net, "chord-cli", names[0])
    keys = paper_keys(ops, seed=seed)

    def chord_run():
        for key in keys:
            yield from chord_client.set(key, PAPER_VALUE)
        for key in keys:
            yield from chord_client.get(key)
        return True

    proc = sim.process(chord_run())
    sim.run(until=proc)
    chord = summarize(chord_client.op_latencies)
    mean_hops = (sum(chord_client.lookup_hops)
                 / len(chord_client.lookup_hops))

    # Sedna side (same workload, zero-hop smart client, N=1 replica to
    # isolate pure routing: no replication fan-out in either system).
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=256, replicas=1,
                                              read_quorum=1, write_quorum=1))
    cluster.start()
    sedna_client = cluster.smart_client("route-cli")

    def sedna_run():
        yield from sedna_client.connect()
        for key in keys:
            yield from sedna_client.write_latest(key.decode(), "v")
        for key in keys:
            yield from sedna_client.read_latest(key.decode())
        return True

    cluster.run(sedna_run())
    sedna = summarize(sedna_client.write_latencies
                      + sedna_client.read_latencies)

    result = FigureResult("§VII-routing",
                          "Zero-hop DHT vs Chord multi-hop lookup")
    result.totals = {
        "chord mean op latency (ms)": chord["mean"] * 1e3,
        "chord mean lookup hops": mean_hops,
        "sedna zero-hop mean op latency (ms)": sedna["mean"] * 1e3,
    }
    ratio = chord["mean"] / sedna["mean"]
    result.expect(
        "zero-hop beats multi-hop by a multiple",
        ratio > 2.0,
        f"chord/sedna latency ratio {ratio:.1f}x at {mean_hops:.1f} hops")
    result.expect(
        "chord hop count is logarithmic, not constant",
        1.5 < mean_hops < 10,
        f"{mean_hops:.1f} mean hops for {n_nodes} nodes")
    result.notes.update(chord=chord, sedna=sedna, hops=mean_hops)
    return result


def ablation_membership(n_nodes: int = 18, duration: float = 30.0,
                        seed: int = 42) -> FigureResult:
    """ZooKeeper-based membership vs gossip: steady-state network cost.

    Both configured for the same worst-case failure-detection latency
    (~2 s).  The §VII claim is about overhead and consistency: gossip
    pushes O(view) bytes per message from every node continuously,
    while heartbeats to a ZooKeeper sub-cluster are O(1) pings whose
    state converges at the quorum, not eventually.
    """
    # Gossip side.  Push gossip needs a suspicion window of several
    # rounds at this size or healthy members flap; 4 s here vs the ZK
    # session timeout of 2 s — gossip pays MORE bytes for WORSE
    # detection latency, which only strengthens the §VII argument.
    sim_g = Simulator()
    net_g = Network(sim_g, latency=LanGigabit(seed=seed))
    gossip = GossipCluster(sim_g, net_g, size=n_nodes, interval=0.66,
                           fanout=2, fail_after=4.0, rng_seed=seed)
    gossip.start()
    sim_g.run(until=10.0)  # warm-up / convergence
    sent_before = gossip.total_messages()
    bytes_before = sum(net_g.endpoints[n].sent_bytes for n in gossip.names)
    sim_g.run(until=10.0 + duration)
    gossip_msgs = gossip.total_messages() - sent_before
    gossip_bytes = (sum(net_g.endpoints[n].sent_bytes
                        for n in gossip.names) - bytes_before)
    converged = gossip.converged()

    # ZooKeeper side: n session pings per 0.66 s (timeout 2 s).
    from ..zk.server import ZkConfig
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64),
                           zk_config=ZkConfig(session_timeout=2.0))
    cluster.start()
    cluster.settle(2.0)  # steady state

    def zk_traffic_bytes():
        return sum(cluster.network.endpoints[f"node{i}-zk"].sent_bytes
                   for i in range(n_nodes))

    bytes_before = zk_traffic_bytes()
    cluster.settle(duration)
    zk_bytes = zk_traffic_bytes() - bytes_before

    result = FigureResult("§VII-membership",
                          "ZooKeeper sub-cluster vs gossip membership")
    result.totals = {
        f"gossip bytes/{duration:.0f}s": float(gossip_bytes),
        f"zk heartbeat bytes/{duration:.0f}s": float(zk_bytes),
        "gossip messages": float(gossip_msgs),
    }
    result.expect(
        "gossip converged (it does work; the cost is the point)",
        converged)
    result.expect(
        "ZooKeeper membership moves fewer bytes at equal detection "
        "latency",
        zk_bytes < gossip_bytes,
        f"{zk_bytes:,} vs {gossip_bytes:,} bytes")
    result.notes.update(gossip_bytes=gossip_bytes, zk_bytes=zk_bytes,
                        gossip_msgs=gossip_msgs)
    return result


def ablation_write_protocol(ops: int = 300, seed: int = 42) -> FigureResult:
    """Sedna LWW writes vs Dynamo-style read-before-write."""
    cluster = SednaCluster(n_nodes=5, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=64))
    cluster.start()
    lww = cluster.smart_client("lww")
    rbw = cluster.smart_client("rbw")
    keys = [k.decode() for k in paper_keys(ops, seed=seed)]

    def lww_run():
        yield from lww.connect()
        for key in keys:
            yield from lww.write_latest(f"l-{key}", "v")
        return True

    def rbw_run():
        """Dynamo: a write first reads the current version vector."""
        yield from rbw.connect()
        for key in keys:
            yield from rbw.read_all(f"r-{key}")       # fetch context
            yield from rbw.write_latest(f"r-{key}", "v")
        return True

    cluster.run(lww_run())
    cluster.run(rbw_run())
    lww_stats = summarize(lww.write_latencies)
    # For read-before-write, one logical write = one read + one write.
    paired = [r + w for r, w in zip(rbw.read_latencies,
                                    rbw.write_latencies)]
    rbw_stats = summarize(paired)
    result = FigureResult(
        "§VII-write", "LWW timestamps vs read-before-write (Dynamo)")
    result.totals = {
        "lww write mean (ms)": lww_stats["mean"] * 1e3,
        "read-before-write mean (ms)": rbw_stats["mean"] * 1e3,
    }
    ratio = rbw_stats["mean"] / lww_stats["mean"]
    result.expect(
        "read-before-write roughly doubles the write latency",
        1.6 < ratio < 3.0,
        f"ratio {ratio:.2f}x")
    result.notes["ratio"] = ratio
    return result
