"""Use-case and trigger-semantics benches: Fig. 4 and Fig. 6.

* :func:`fig4_ripple` quantifies the §IV.B flow-control claim: a
  circular trigger topology floods without the trigger interval and is
  rate-limited with it.
* :func:`fig6_freshness` replays the §V micro-blogging search engine
  (Fig. 6 steps 1–7) and measures the write→searchable freshness the
  paper promises ("the time between (1) and (7) should be less than
  several minutes"; with a memory store it is sub-second).
"""

from __future__ import annotations

from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.stats import summarize
from ..triggers.api import Action, DataHooks, Job, TriggerOutput
from ..triggers.runtime import TriggerRuntime
from ..workloads.microblog import MicroblogGenerator, Tweet
from .harness import FigureResult

__all__ = ["fig4_ripple", "fig6_freshness", "MicroblogSearchEngine"]


def _ripple_run(trigger_interval: float, duration: float,
                seed: int = 42) -> dict:
    """One circular-trigger run; returns activation counts."""
    cluster = SednaCluster(
        n_nodes=3, zk_size=3, seed=seed,
        config=SednaConfig(num_vnodes=32, trigger_interval=trigger_interval,
                           scan_interval=0.02))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()

    class Bounce(Action):
        def __init__(self, target):
            self.target = target

        def action(self, key, values, result):
            for value in values:
                result.write(key.key, value + 1, table=self.target)

    job_a = runtime.submit(Job("A").with_action(Bounce("tb"))
                           .monitor(DataHooks(dataset="d", table="ta"))
                           .output_to(TriggerOutput("d", "tb")))
    job_c = runtime.submit(Job("C").with_action(Bounce("ta"))
                           .monitor(DataHooks(dataset="d", table="tb"))
                           .output_to(TriggerOutput("d", "ta")))
    # A second seed writer (the paper's trigger D) doubles the pressure.
    job_d = runtime.submit(Job("D").with_action(Bounce("tb"))
                           .monitor(DataHooks(dataset="d", table="td"))
                           .output_to(TriggerOutput("d", "tb")))
    client = cluster.client()

    def kick():
        yield from client.write_latest("ball", 0, table="ta", dataset="d")
        yield from client.write_latest("ball", 0, table="td", dataset="d")
        return True

    cluster.run(kick())
    cluster.settle(duration)
    total = job_a.activations + job_c.activations + job_d.activations
    return {"total": total, "per_job": {"A": job_a.activations,
                                        "C": job_c.activations,
                                        "D": job_d.activations},
            "coalesced": runtime.flow.coalesced}


def fig4_ripple(duration: float = 20.0) -> FigureResult:
    """Circular triggers with vs without the trigger interval (§IV.B)."""
    suppressed = _ripple_run(trigger_interval=1.0, duration=duration)
    flooding = _ripple_run(trigger_interval=0.0, duration=duration)
    result = FigureResult(
        "Fig.4", "Ripple effect: circular triggers, interval on vs off")
    result.totals = {
        "activations (interval=1.0s)": float(suppressed["total"]),
        "activations (interval=0, flood)": float(flooding["total"]),
    }
    result.expect(
        "flow control bounds the activation storm",
        suppressed["total"] * 3 < flooding["total"],
        f"{suppressed['total']} vs {flooding['total']} activations "
        f"in {duration:.0f}s")
    budget = duration / 1.0 + 2
    result.expect(
        "suppressed loop stays within the interval budget per job",
        all(count <= budget for count in suppressed["per_job"].values()),
        f"per-job counts {suppressed['per_job']} against budget {budget:.0f}")
    result.expect(
        "the loop keeps making progress under suppression",
        suppressed["per_job"]["C"] >= 3,
        f"C fired {suppressed['per_job']['C']} times")
    result.notes.update(suppressed=suppressed, flooding=flooding)
    return result


class MicroblogSearchEngine:
    """The §V realtime search engine wired from public APIs (Fig. 6).

    * the **crawler** writes tweets (``write_all``) into
      ``web/tweets`` and social edges into ``web/follows`` — step 2–3;
    * an **indexer** trigger job parses new tweets and maintains an
      inverted index in ``web/index`` — step 4–5;
    * a **social-graph** trigger job folds follow events into adjacency
      rows in ``web/graph``;
    * a **retweet-rank** trigger job counts retweets per original tweet
      into ``web/rank`` (the §V importance factor 2);
    * **queries** read the inverted index and rank hits by recency and
      retweet count — step 6–7.
    """

    DATASET = "web"

    def __init__(self, cluster: SednaCluster, runtime: TriggerRuntime):
        self.cluster = cluster
        self.runtime = runtime
        self.client = cluster.client("search-frontend")
        engine = self

        class IndexerAction(Action):
            """Tokenize tweets, maintain term -> posting list."""

            def __init__(self):
                self.postings: dict[str, list[str]] = {}

            def action(self, key, values, result):
                for blob in values:
                    tweet = Tweet.decode(key.key, blob)
                    for term in sorted(set(tweet.text.split())):
                        plist = self.postings.setdefault(term, [])
                        if tweet.tweet_id not in plist:
                            plist.append(tweet.tweet_id)
                            if len(plist) > 200:
                                plist.pop(0)
                        result.write(term, list(plist), table="index")

        class GraphAction(Action):
            """Fold follow edges into follower adjacency lists."""

            def __init__(self):
                self.adjacency: dict[str, list[str]] = {}

            def action(self, key, values, result):
                for followee in values:
                    follower = key.key
                    adj = self.adjacency.setdefault(follower, [])
                    if followee not in adj:
                        adj.append(followee)
                    result.write(follower, list(adj), table="graph")

        class RankAction(Action):
            """Count retweets per original tweet."""

            def __init__(self):
                self.counts: dict[str, int] = {}

            def action(self, key, values, result):
                for blob in values:
                    tweet = Tweet.decode(key.key, blob)
                    if tweet.retweet_of:
                        c = self.counts.get(tweet.retweet_of, 0) + 1
                        self.counts[tweet.retweet_of] = c
                        result.write(tweet.retweet_of, c, table="rank")

        self.indexer = runtime.submit(
            Job("indexer").with_action(IndexerAction())
            .monitor(DataHooks(dataset=self.DATASET, table="tweets"))
            .output_to(TriggerOutput(self.DATASET, "index")).every(0.05))
        self.grapher = runtime.submit(
            Job("social-graph").with_action(GraphAction())
            .monitor(DataHooks(dataset=self.DATASET, table="follows"))
            .output_to(TriggerOutput(self.DATASET, "graph")).every(0.05))
        self.ranker = runtime.submit(
            Job("retweet-rank").with_action(RankAction())
            .monitor(DataHooks(dataset=self.DATASET, table="tweets"))
            .output_to(TriggerOutput(self.DATASET, "rank")).every(0.05))

    # -- crawler side (steps 1-3) ---------------------------------------
    def crawl_tweet(self, tweet: Tweet):
        """Store one crawled tweet (uses write_all, §V)."""
        status = yield from self.client.write_all(
            tweet.tweet_id, tweet.encoded(), table="tweets",
            dataset=self.DATASET)
        return status

    def crawl_follow(self, follower: str, followee: str):
        """Store one follow edge."""
        status = yield from self.client.write_latest(
            follower, followee, table="follows", dataset=self.DATASET)
        return status

    # -- query side (steps 6-7) --------------------------------------------
    def search(self, term: str, limit: int = 10):
        """Inverted-index lookup ranked by retweet count (freshest last)."""
        postings = yield from self.client.read_latest(
            term, table="index", dataset=self.DATASET)
        if not postings:
            return []
        ranked = []
        for tweet_id in postings[-limit * 2:]:
            count = yield from self.client.read_latest(
                tweet_id, table="rank", dataset=self.DATASET)
            ranked.append((tweet_id, count or 0))
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit]

    def followers_of(self, user: str):
        """Adjacency row from the social-graph job's output."""
        adj = yield from self.client.read_latest(
            user, table="graph", dataset=self.DATASET)
        return adj or []


def fig6_freshness(n_tweets: int = 100, seed: int = 7) -> FigureResult:
    """End-to-end crawl→index→search freshness of the §V use case."""
    cluster = SednaCluster(
        n_nodes=5, zk_size=3, seed=seed,
        config=SednaConfig(num_vnodes=64, scan_interval=0.02,
                           trigger_interval=0.05))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    engine = MicroblogSearchEngine(cluster, runtime)
    gen = MicroblogGenerator(n_users=50, seed=seed)
    tweets = list(gen.tweets(n_tweets, now=cluster.sim.now, dt=0.03))
    freshness: list[float] = []

    def drive():
        for tweet in tweets:
            written_at = cluster.sim.now
            yield from engine.crawl_tweet(tweet)
            term = tweet.text.split()[0]
            # Poll the index until the tweet is searchable (step 6-7).
            deadline = written_at + 10.0
            while cluster.sim.now < deadline:
                postings = yield from engine.client.read_latest(
                    term, table="index", dataset=engine.DATASET)
                if postings and tweet.tweet_id in postings:
                    freshness.append(cluster.sim.now - written_at)
                    break
                yield cluster.sim.timeout(0.02)
        return True

    cluster.run(drive())
    stats = summarize(freshness)
    result = FigureResult(
        "Fig.6", "Micro-blogging search: write -> searchable freshness")
    result.totals = {
        "indexed tweets": float(len(freshness)),
        "freshness p50 (ms)": stats.get("p50", float("nan")) * 1e3,
        "freshness p95 (ms)": stats.get("p95", float("nan")) * 1e3,
    }
    result.expect(
        "every tweet becomes searchable",
        len(freshness) == n_tweets,
        f"{len(freshness)}/{n_tweets} indexed within 10s")
    if freshness:
        result.expect(
            "freshness far below the paper's minutes-scale bound",
            stats["p95"] < 2.0,
            f"p95 {stats['p95']*1e3:.0f} ms")
    result.notes["freshness"] = stats
    result.notes["trigger_stats"] = runtime.stats()
    return result
