"""Boot-cost bench: §III.E situation 1.

"Lots of creation operations will take a long time when the virtual
nodes number is large, but it only happens once when the Sedna cluster
firstly starts up."  This bench measures (a) how first-boot cost scales
with the virtual-node count, and (b) that a node joining an
*initialized* cluster pays almost nothing in ZooKeeper writes.
"""

from __future__ import annotations

from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.node import SednaNode
from ..persistence.disk import SimDisk
from .harness import FigureResult

__all__ = ["boot_cost_at", "boot_cost"]


def boot_cost_at(num_vnodes: int, seed: int = 42) -> dict:
    """Boot a 3-node cluster with the join protocol; return costs."""
    cluster = SednaCluster(n_nodes=3, zk_size=3, seed=seed,
                           config=SednaConfig(num_vnodes=num_vnodes))
    t0 = cluster.sim.now
    cluster.start(bootstrap="join")
    boot_time = cluster.sim.now - t0
    writes_at_boot = sum(s.writes_led for s in cluster.ensemble.servers)

    # A late joiner against the already-initialized namespace.
    disk = SimDisk()
    late = SednaNode(cluster.sim, cluster.network, "late",
                     cluster.ensemble.names, cluster.config,
                     cluster.zk_config, disk=disk)
    cluster.nodes["late"] = late
    cluster.node_names.append("late")
    t1 = cluster.sim.now
    proc = cluster.sim.process(late.join())
    cluster.sim.run(until=proc)
    join_time = cluster.sim.now - t1
    writes_for_join = (sum(s.writes_led for s in cluster.ensemble.servers)
                       - writes_at_boot)
    return {
        "num_vnodes": num_vnodes,
        "boot_time_s": boot_time,
        "boot_zk_writes": writes_at_boot,
        "late_join_time_s": join_time,
        "late_join_zk_writes": writes_for_join,
    }


def boot_cost() -> FigureResult:
    """First boot vs late join, at two ring sizes."""
    small = boot_cost_at(128)
    large = boot_cost_at(512)
    result = FigureResult("§III.E-boot",
                          "First-boot cost vs late-join cost")
    result.totals = {
        "128 vnodes: boot ZK writes": float(small["boot_zk_writes"]),
        "128 vnodes: late-join ZK writes":
            float(small["late_join_zk_writes"]),
        "512 vnodes: boot ZK writes": float(large["boot_zk_writes"]),
        "512 vnodes: late-join ZK writes":
            float(large["late_join_zk_writes"]),
        "512 vnodes: boot time (s)": large["boot_time_s"],
        "512 vnodes: late-join time (s)": large["late_join_time_s"],
    }
    result.expect(
        "boot writes scale with the vnode count",
        large["boot_zk_writes"] > 2.5 * small["boot_zk_writes"],
        f"{small['boot_zk_writes']} -> {large['boot_zk_writes']}")
    result.expect(
        "it only happens once: late joins are far cheaper than boot",
        large["late_join_zk_writes"] < large["boot_zk_writes"] / 2,
        f"join {large['late_join_zk_writes']} vs boot "
        f"{large['boot_zk_writes']} ZK writes")
    result.expect(
        "late join completes in seconds",
        large["late_join_time_s"] < 10.0,
        f"{large['late_join_time_s']:.2f}s")
    result.notes.update(small=small, large=large)
    return result
