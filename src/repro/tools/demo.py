"""``python -m repro.tools.demo`` — a one-command cluster tour.

Boots a small cluster, drives a mixed workload (including a crash and
recovery), and prints the operator status report.  Useful as a smoke
test of an installation and as a first look at the inspection tooling.
"""

from __future__ import annotations

from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..zk.server import ZkConfig
from .inspect import describe_cluster


def main() -> None:
    print("booting 5 Sedna nodes + 3 ZooKeeper members...\n")
    cluster = SednaCluster(n_nodes=5, zk_size=3,
                           config=SednaConfig(num_vnodes=64),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    client = cluster.client("demo")
    keys = [f"demo{i}" for i in range(40)]

    def workload():
        for i, key in enumerate(keys):
            yield from client.write_latest(key, f"value-{i}")
        for key in keys:
            yield from client.read_latest(key)
        return True

    cluster.run(workload())
    cluster.crash_node("node3")
    cluster.settle(4.0)

    def touch():
        for key in keys:
            yield from client.read_latest(key)
        return True

    cluster.run(touch())
    cluster.settle(3.0)
    print(describe_cluster(cluster, sample_keys=keys))


if __name__ == "__main__":
    main()
