"""Operator tooling: cluster inspection reports."""

from .inspect import (describe_cluster, node_summary, replication_health,
                      ring_summary, zk_summary)

__all__ = ["describe_cluster", "node_summary", "replication_health",
           "ring_summary", "zk_summary"]
