"""Deterministic config explorer over the adversarial scenario matrix.

Archgym-style parameter search, minus the wall-clock: every cell of
the (scenario × config) matrix is one seeded
:class:`~repro.chaos.runner.ChaosRunner` run on the deterministic sim,
scored by :func:`repro.obs.fitness.extract_fitness`.  Same seeds →
byte-identical best-config tables, which is what makes the search a
*test generator*: any cell that violates an invariant — or whose
fitness regresses past ``corpus_bound`` × the scenario's best — is
frozen into a replayable corpus entry under
``tests/chaos/regressions/`` that the tier-1 suite auto-discovers and
re-runs with byte-identical digests (``tests/chaos/
test_regression_corpus.py``).

The searched config space (``DIMENSIONS``):

* ``rw`` — (R, W) quorum pairs, all satisfying R + W > N and W > N/2;
* ``lease_base`` — the §III.E mapping-cache lease starting period;
* ``pass_byte_budget`` — the rebalancer's per-pass migration budget;
* ``heat_write_weight`` — the ``writes`` entry of ``HEAT_WEIGHTS``;
* ``scan_interval`` — the §IV.C trigger dirty-column sweep cadence.

CLI (``python -m repro.explore``)::

    python -m repro.explore                    # matrix × 8 random configs
    python -m repro.explore --mode grid --evals 16
    python -m repro.explore --scenarios flash-crowd,trigger-storm

Outputs land in ``benchmarks/results/``: ``BENCH_scenarios.json``
(best config + full table + fitness trajectory per scenario) and
``scenario_matrix.txt`` (the human-readable tables).
"""

from __future__ import annotations

import argparse
import hashlib
import itertools
import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

from ..chaos.runner import ChaosReport, ChaosRunner
from ..core.config import SednaConfig
from ..core.hashring import HEAT_WEIGHTS
from ..obs.fitness import extract_fitness
from ..workloads.scenarios import (SCENARIOS, ScenarioSpec, get_scenario,
                                   scenario_matrix)

__all__ = ["ConfigPoint", "DIMENSIONS", "grid_points", "random_points",
           "run_cell", "explore", "format_tables", "write_outputs",
           "corpus_entry", "write_corpus_entry", "load_corpus",
           "replay_corpus_entry", "CORPUS_SCHEMA", "BENCH_SCHEMA", "main"]

CORPUS_SCHEMA = "repro.chaos.regression/1"
BENCH_SCHEMA = "repro.bench.scenarios/1"

#: The searched axes.  Every (R, W) pair satisfies the paper's §III.C
#: constraints for N=3 (R + W > N, W > N/2) — ``SednaConfig`` would
#: reject anything else at construction.
DIMENSIONS: dict[str, tuple] = {
    "rw": ((1, 3), (2, 2), (2, 3), (3, 2)),
    "lease_base": (0.5, 1.0, 2.0),
    "pass_byte_budget": (32 * 1024, 64 * 1024, 128 * 1024),
    "heat_write_weight": (1.0, 2.0, 4.0),
    "scan_interval": (0.05, 0.2),
}


@dataclass(frozen=True)
class ConfigPoint:
    """One point of the config space (JSON-roundtrippable so corpus
    entries can embed it verbatim)."""

    read_quorum: int = 2
    write_quorum: int = 2
    lease_base: float = 1.0
    pass_byte_budget: int = 64 * 1024
    heat_write_weight: float = 2.0
    scan_interval: float = 0.05
    num_vnodes: int = 16

    def label(self) -> str:
        """Stable human-readable cell id (table rows, corpus names)."""
        return (f"R{self.read_quorum}W{self.write_quorum}"
                f"-lease{self.lease_base:g}"
                f"-budget{self.pass_byte_budget // 1024}k"
                f"-hw{self.heat_write_weight:g}"
                f"-scan{self.scan_interval:g}")

    def to_config(self) -> SednaConfig:
        return SednaConfig(num_vnodes=self.num_vnodes,
                           read_quorum=self.read_quorum,
                           write_quorum=self.write_quorum,
                           lease_base=self.lease_base,
                           scan_interval=self.scan_interval)

    def rebalance_opts(self) -> dict:
        weights = dict(HEAT_WEIGHTS)
        weights["writes"] = self.heat_write_weight
        return {"pass_byte_budget": self.pass_byte_budget,
                "weights": weights}

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ConfigPoint":
        return cls(**d)


def grid_points(limit: Optional[int] = None) -> list[ConfigPoint]:
    """The full cartesian grid (|rw|·|lease|·|budget|·|hw|·|scan| =
    216 points), optionally truncated to the first ``limit``."""
    points = []
    for rw, lease, budget, hw, scan in itertools.product(
            *(DIMENSIONS[dim] for dim in ("rw", "lease_base",
                                          "pass_byte_budget",
                                          "heat_write_weight",
                                          "scan_interval"))):
        points.append(ConfigPoint(read_quorum=rw[0], write_quorum=rw[1],
                                  lease_base=lease,
                                  pass_byte_budget=budget,
                                  heat_write_weight=hw,
                                  scan_interval=scan))
    return points[:limit] if limit else points


def random_points(n: int, seed: int = 0) -> list[ConfigPoint]:
    """``n`` distinct seeded draws from the grid, default point first
    (so every search carries the shipped config as its baseline)."""
    rng = random.Random(f"{seed}/explorer/points")
    out = [ConfigPoint()]
    seen = {out[0]}
    attempts = 0
    while len(out) < n and attempts < n * 50:
        attempts += 1
        rw = DIMENSIONS["rw"][rng.randrange(len(DIMENSIONS["rw"]))]
        point = ConfigPoint(
            read_quorum=rw[0], write_quorum=rw[1],
            lease_base=rng.choice(DIMENSIONS["lease_base"]),
            pass_byte_budget=rng.choice(DIMENSIONS["pass_byte_budget"]),
            heat_write_weight=rng.choice(DIMENSIONS["heat_write_weight"]),
            scan_interval=rng.choice(DIMENSIONS["scan_interval"]))
        if point not in seen:
            seen.add(point)
            out.append(point)
    return out[:n]


def run_cell(spec: ScenarioSpec, point: ConfigPoint, seed: int,
             duration: float, profile: str, n_nodes: int,
             rebalance: bool) -> ChaosReport:
    """One (scenario, config) cell: a seeded obs-enabled chaos run."""
    return ChaosRunner(
        seed=seed, profile=profile, duration=duration, n_nodes=n_nodes,
        scenario=spec, config=point.to_config(), obs=True,
        rebalance=rebalance,
        rebalance_opts=point.rebalance_opts() if rebalance else None).run()


# -- corpus entries -------------------------------------------------------
def corpus_entry(spec: ScenarioSpec, point: ConfigPoint, seed: int,
                 duration: float, profile: str, n_nodes: int,
                 rebalance: bool, digest: str, fitness: dict,
                 reason: str) -> dict:
    """A replayable regression record: everything needed to rebuild
    the exact run plus the digest and fitness it must reproduce."""
    name = f"{spec.name}--{point.label()}--seed{seed}"
    return {
        "schema": CORPUS_SCHEMA,
        "name": name,
        "reason": reason,
        "runner": {"seed": seed, "duration": duration, "profile": profile,
                   "n_nodes": n_nodes, "rebalance": rebalance},
        "scenario": spec.to_dict(),
        "config": point.to_dict(),
        "digest": digest,
        "fitness": fitness,
    }


def write_corpus_entry(corpus_dir: Path, entry: dict) -> Path:
    """Write one entry under a deterministic, collision-free name."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = hashlib.sha256(entry["name"].encode()).hexdigest()[:10]
    path = corpus_dir / f"{entry['scenario']['name']}-{stem}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Path) -> list[tuple[Path, dict]]:
    """Every ``*.json`` entry under ``corpus_dir``, sorted by name."""
    if not corpus_dir.is_dir():
        return []
    return [(path, json.loads(path.read_text()))
            for path in sorted(corpus_dir.glob("*.json"))]


def replay_corpus_entry(entry: dict) -> ChaosReport:
    """Re-run one corpus entry exactly as the explorer ran it."""
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"unknown corpus schema {entry.get('schema')!r}")
    spec = ScenarioSpec.from_dict(entry["scenario"])
    point = ConfigPoint.from_dict(entry["config"])
    r = entry["runner"]
    return run_cell(spec, point, seed=r["seed"], duration=r["duration"],
                    profile=r["profile"], n_nodes=r["n_nodes"],
                    rebalance=r["rebalance"])


# -- the search -----------------------------------------------------------
def explore(scenarios: Sequence[ScenarioSpec],
            points: Sequence[ConfigPoint], seed: int = 0,
            duration: float = 4.0, profile: str = "mixed",
            n_nodes: int = 6, rebalance: bool = True,
            corpus_dir: Optional[Path] = None, corpus_bound: float = 3.0,
            log: Any = None) -> dict:
    """Run the whole matrix; returns the ``BENCH_scenarios`` payload.

    ``corpus_dir=None`` disables corpus promotion; otherwise every
    violating cell and every cell whose score exceeds ``corpus_bound``
    × the scenario best is written out as a regression entry.
    """
    scenarios_out: dict[str, dict] = {}
    for spec in scenarios:
        evals: list[dict] = []
        trajectory: list[dict] = []
        best_so_far: Optional[float] = None
        for point in points:
            report = run_cell(spec, point, seed, duration, profile,
                              n_nodes, rebalance)
            fitness = extract_fitness(report)
            score = fitness["score"]
            best_so_far = score if best_so_far is None \
                else min(best_so_far, score)
            evals.append({"label": point.label(),
                          "point": point.to_dict(),
                          "fitness": fitness,
                          "digest": report.digest,
                          "ok": report.ok})
            trajectory.append({"label": point.label(), "score": score,
                               "best_so_far": best_so_far})
            if log is not None:
                log(f"[{spec.name}] {point.label()} score={score:g}"
                    + ("" if report.ok else "  INVARIANT VIOLATION"))
        table = sorted(evals,
                       key=lambda row: (row["fitness"]["score"],
                                        row["label"]))
        best = table[0]
        promoted: list[str] = []
        if corpus_dir is not None:
            best_score = best["fitness"]["score"]
            for row in evals:
                fit = row["fitness"]
                reason = None
                if fit["violations"]:
                    reason = (f"invariant-violation: {fit['violations']} "
                              f"hard anomalies")
                elif (corpus_bound > 0 and best_score > 0
                        and fit["score"] > corpus_bound * best_score):
                    reason = (f"fitness-regression: score {fit['score']:g} "
                              f"> {corpus_bound:g}x scenario best "
                              f"{best_score:g}")
                if reason is not None:
                    entry = corpus_entry(
                        spec, ConfigPoint.from_dict(row["point"]), seed,
                        duration, profile, n_nodes, rebalance,
                        row["digest"], fit, reason)
                    path = write_corpus_entry(corpus_dir, entry)
                    promoted.append(path.name)
                    if log is not None:
                        log(f"[{spec.name}] promoted {path.name}: {reason}")
        scenarios_out[spec.name] = {"spec": spec.to_dict(), "best": best,
                                    "table": table,
                                    "trajectory": trajectory,
                                    "promoted": promoted}
    return {"schema": BENCH_SCHEMA, "seed": seed, "duration": duration,
            "profile": profile, "n_nodes": n_nodes,
            "rebalance": rebalance, "n_configs": len(points),
            "corpus_bound": corpus_bound, "scenarios": scenarios_out}


# -- output ---------------------------------------------------------------
_COLUMNS = ("score", "p99_read_s", "p99_write_s", "op_rate_spread",
            "failure_ratio", "failures", "aborts", "violations")


def format_tables(out: dict) -> str:
    """Human-readable per-scenario best-config tables (deterministic:
    derived from the sorted JSON payload only)."""
    lines = [f"scenario matrix  seed={out['seed']} "
             f"duration={out['duration']:g} profile={out['profile']} "
             f"configs={out['n_configs']}"]
    for name in sorted(out["scenarios"]):
        result = out["scenarios"][name]
        lines.append("")
        lines.append(f"== {name}  (best: {result['best']['label']}) ==")
        header = f"{'config':<38}" + "".join(f"{c:>16}" for c in _COLUMNS)
        lines.append(header)
        for row in result["table"]:
            fit = row["fitness"]
            lines.append(f"{row['label']:<38}"
                         + "".join(f"{fit[c]:>16g}" for c in _COLUMNS))
        if result["promoted"]:
            lines.append("promoted to regression corpus: "
                         + ", ".join(result["promoted"]))
    return "\n".join(lines) + "\n"


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def default_results_dir() -> Path:
    return _repo_root() / "benchmarks" / "results"


def default_corpus_dir() -> Path:
    return _repo_root() / "tests" / "chaos" / "regressions"


def write_outputs(out: dict, results_dir: Path) -> list[Path]:
    """Write ``BENCH_scenarios.json`` + the text tables; returns paths."""
    results_dir.mkdir(parents=True, exist_ok=True)
    bench = results_dir / "BENCH_scenarios.json"
    bench.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    tables = results_dir / "scenario_matrix.txt"
    tables.write_text(format_tables(out))
    return [bench, tables]


# -- CLI ------------------------------------------------------------------
def _resolve_scenarios(spec: str) -> list[ScenarioSpec]:
    if spec == "matrix":
        return scenario_matrix()
    if spec == "all":
        return [SCENARIOS[name] for name in sorted(SCENARIOS)]
    return [get_scenario(name.strip()) for name in spec.split(",")]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Deterministic (scenario x config) search over the "
                    "simulated Sedna cluster; regressions land as "
                    "replayable seed-corpus tests.")
    parser.add_argument("--scenarios", default="matrix",
                        help="'matrix' (zipf theta sweep + drift/flash/"
                             "storm, the default), 'all' (the presets), "
                             "or a comma list of preset names")
    parser.add_argument("--mode", choices=("random", "grid"),
                        default="random",
                        help="config sampling: seeded random draws "
                             "(default) or the cartesian grid prefix")
    parser.add_argument("--evals", type=int, default=8,
                        help="configs evaluated per scenario (default 8)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=4.0,
                        help="simulated seconds of faulted workload "
                             "per cell")
    parser.add_argument("--profile", default="mixed")
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--no-rebalance", action="store_true",
                        help="leave the rebalancer off (the migration "
                             "budget/heat axes become inert)")
    parser.add_argument("--results-dir", type=Path,
                        default=default_results_dir())
    parser.add_argument("--corpus-dir", type=Path,
                        default=default_corpus_dir())
    parser.add_argument("--no-corpus", action="store_true",
                        help="never write regression-corpus entries")
    parser.add_argument("--corpus-bound", type=float, default=3.0,
                        help="promote cells scoring worse than BOUND x "
                             "the scenario best (0 disables the fitness "
                             "rule; violations always promote)")
    args = parser.parse_args(argv)

    scenarios = _resolve_scenarios(args.scenarios)
    points = (random_points(args.evals, args.seed)
              if args.mode == "random" else grid_points(args.evals))
    out = explore(scenarios, points, seed=args.seed,
                  duration=args.duration, profile=args.profile,
                  n_nodes=args.nodes, rebalance=not args.no_rebalance,
                  corpus_dir=None if args.no_corpus else args.corpus_dir,
                  corpus_bound=args.corpus_bound, log=print)
    for path in write_outputs(out, args.results_dir):
        print(f"wrote {path}")
    violations = sum(1 for result in out["scenarios"].values()
                     for row in result["table"]
                     if row["fitness"]["violations"])
    if violations:
        print(f"{violations} cell(s) violated invariants")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
