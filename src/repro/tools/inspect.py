"""Operator-facing cluster inspection reports.

``describe_cluster`` renders the kind of status page an operator of a
Sedna deployment would want: ZooKeeper ensemble health, per-node
ownership and traffic, ring balance, replication health of sampled
keys, and trigger activity.  The report is plain text (the deployment
is simulated; there is no HTTP to serve it over) and every section is
also available as structured data for tests and tooling.
"""

from __future__ import annotations

from typing import Optional

from ..bench.harness import format_table
from ..core.cluster import SednaCluster
from ..core.types import FullKey

__all__ = ["ring_summary", "zk_summary", "node_summary",
           "replication_health", "obs_summary", "describe_cluster"]


def ring_summary(cluster: SednaCluster) -> dict:
    """Vnode-ownership balance as seen by node0's cache."""
    any_node = next(iter(cluster.nodes.values()))
    ring = any_node.cache.ring
    counts = ring.load_counts()
    unassigned = len(ring.unassigned())
    values = list(counts.values()) or [0]
    return {
        "num_vnodes": ring.num_vnodes,
        "owners": counts,
        "unassigned": unassigned,
        "spread": max(values) - min(values),
    }


def zk_summary(cluster: SednaCluster) -> dict:
    """Ensemble roles, zxids and session counts."""
    members = []
    for server in cluster.ensemble.servers:
        members.append({
            "name": server.name,
            "running": server.running,
            "role": server.role if server.running else "down",
            "epoch": server.epoch,
            "zxid": server.applied_zxid,
            "sessions": len(server.sessions),
            "reads_served": server.reads_served,
        })
    leader = cluster.ensemble.leader()
    return {"members": members,
            "leader": leader.name if leader else None}


def node_summary(cluster: SednaCluster) -> list[dict]:
    """One row per Sedna real node."""
    return [node.stats() for node in cluster.nodes.values()]


def replication_health(cluster: SednaCluster, keys: list[str],
                       table: str = "default",
                       dataset: str = "default") -> dict:
    """Live-copy histogram for the given keys."""
    histogram: dict[int, int] = {}
    under: list[str] = []
    n = cluster.config.replicas
    for key in keys:
        encoded = FullKey(dataset=dataset, table=table, key=key).encoded()
        copies = cluster.total_replicas_of(encoded)
        histogram[copies] = histogram.get(copies, 0) + 1
        if copies < n:
            under.append(key)
    return {"histogram": dict(sorted(histogram.items())),
            "under_replicated": under,
            "target": n}


def obs_summary(cluster: SednaCluster, top: int = 10) -> dict:
    """Metrics-registry digest: biggest counter series plus span totals.

    Empty dict when the cluster was built without an observability
    bundle."""
    obs = cluster.obs
    if obs is None:
        return {}
    snap = obs.snapshot()
    counters = [(label, data["value"])
                for label, data in snap["series"].items()
                if data["type"] == "counter"]
    counters.sort(key=lambda item: (-item[1], item[0]))
    return {
        "series": len(snap["series"]),
        "dropped_series": snap["dropped_series"],
        "top_counters": counters[:top],
        "tracing": snap.get("tracing",
                            {"traces": 0, "spans": 0, "dropped_spans": 0}),
    }


def describe_cluster(cluster: SednaCluster,
                     sample_keys: Optional[list[str]] = None) -> str:
    """Render the full status report."""
    lines = [f"=== Sedna cluster status @ t={cluster.sim.now:.2f}s ==="]

    zk = zk_summary(cluster)
    lines.append(f"\n-- ZooKeeper sub-cluster (leader: {zk['leader']}) --")
    lines.append(format_table(
        [(m["name"], m["role"], m["epoch"], m["zxid"], m["sessions"],
          m["reads_served"]) for m in zk["members"]],
        headers=("member", "role", "epoch", "zxid", "sessions", "reads")))

    ring = ring_summary(cluster)
    lines.append(f"\n-- Ring: {ring['num_vnodes']} vnodes, "
                 f"spread {ring['spread']}, "
                 f"unassigned {ring['unassigned']} --")
    lines.append(format_table(sorted(ring["owners"].items()),
                              headers=("owner", "vnodes")))

    lines.append("\n-- Real nodes --")
    lines.append(format_table(
        [(s["name"], "up" if s["running"] else "DOWN", s["keys"],
          s["coordinated_writes"], s["coordinated_reads"],
          s["replica_writes"], s["replica_reads"], s["recoveries"])
         for s in node_summary(cluster)],
        headers=("node", "state", "rows", "c.writes", "c.reads",
                 "r.writes", "r.reads", "recoveries")))

    if sample_keys:
        health = replication_health(cluster, sample_keys)
        lines.append(f"\n-- Replication health over {len(sample_keys)} "
                     f"sampled keys (target {health['target']}) --")
        lines.append(format_table(
            sorted(health["histogram"].items()),
            headers=("live copies", "keys")))
        if health["under_replicated"]:
            lines.append("under-replicated: "
                         + ", ".join(health["under_replicated"][:10]))

    net = cluster.network
    lines.append(f"\n-- Network: {net.delivered:,} delivered, "
                 f"{net.dropped:,} dropped --")

    obs = obs_summary(cluster)
    if obs:
        tracing = obs["tracing"]
        lines.append(f"\n-- Observability: {obs['series']} series "
                     f"({obs['dropped_series']} dropped), "
                     f"{tracing['traces']} traces / "
                     f"{tracing['spans']} spans --")
        lines.append(format_table(obs["top_counters"],
                                  headers=("series", "count")))
    return "\n".join(lines)
