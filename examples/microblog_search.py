#!/usr/bin/env python
"""The §V use case: a realtime micro-blogging search engine (Fig. 6).

The pipeline mirrors the paper's figure exactly:

  (1) users tweet  ->  (2) crawler scrapes  ->  (3) write_all to Sedna
  (4) triggers fire ->  (5) index/graph/rank tables updated
  (6) user queries  ->  (7) fresh results

Three trigger jobs run on the cluster:

* **indexer** — tokenizes new tweets into an inverted index;
* **social-graph** — folds follow events into adjacency lists;
* **retweet-rank** — counts retweets (the §V importance factor).

The script reports the (1)→(7) freshness the paper claims should be
"less than several minutes" — with a memory store it is milliseconds.

Usage::

    python examples/microblog_search.py
"""

from repro import SednaCluster, SednaConfig
from repro.bench.usecase import MicroblogSearchEngine
from repro.core.stats import summarize
from repro.triggers.runtime import TriggerRuntime
from repro.workloads.microblog import MicroblogGenerator


def main() -> None:
    print("Booting the realtime search deployment...")
    cluster = SednaCluster(
        n_nodes=5, zk_size=3,
        config=SednaConfig(num_vnodes=64, scan_interval=0.02,
                           trigger_interval=0.05))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    engine = MicroblogSearchEngine(cluster, runtime)
    gen = MicroblogGenerator(n_users=60, retweet_prob=0.3, seed=11)

    # ------------------------------------------------------------------
    # Steps 1-3: the crawler scrapes tweets and social edges.
    # ------------------------------------------------------------------
    tweets = list(gen.tweets(150, now=cluster.sim.now, dt=0.02))
    edges = list(gen.follow_edges(80))
    freshness = []

    def crawl():
        for edge in edges:
            yield from engine.crawl_follow(edge.follower, edge.followee)
        for tweet in tweets:
            written = cluster.sim.now
            yield from engine.crawl_tweet(tweet)
            # Poll until this tweet is searchable (steps 6-7).
            term = tweet.text.split()[0]
            while True:
                postings = yield from engine.client.read_latest(
                    term, table="index", dataset=engine.DATASET)
                if postings and tweet.tweet_id in postings:
                    freshness.append(cluster.sim.now - written)
                    break
                yield cluster.sim.timeout(0.02)
        return True

    print(f"crawling {len(edges)} follow edges and {len(tweets)} tweets...")
    cluster.run(crawl())
    stats = summarize(freshness)
    print(f"\ncrawl->searchable freshness over {stats['count']} tweets "
          f"(simulated):")
    print(f"  p50 {stats['p50']*1e3:7.1f} ms")
    print(f"  p95 {stats['p95']*1e3:7.1f} ms")
    print(f"  max {stats['max']*1e3:7.1f} ms   "
          f"(paper budget: 'less than several minutes')")

    # ------------------------------------------------------------------
    # Steps 6-7: interactive-style queries.
    # ------------------------------------------------------------------
    sample_terms = []
    for tweet in tweets[:50]:
        for word in tweet.text.split():
            if word not in sample_terms:
                sample_terms.append(word)
    sample_terms = sample_terms[:5]

    def query_all():
        results = {}
        for term in sample_terms:
            results[term] = yield from engine.search(term, limit=3)
        return results

    print("\nsample searches (tweet id, retweet count), rank = retweets:")
    for term, hits in cluster.run(query_all()).items():
        print(f"  {term!r:12s} -> {hits}")

    def social():
        user = edges[0].follower
        following = yield from engine.followers_of(user)
        return user, following

    user, following = cluster.run(social())
    print(f"\nsocial graph (trigger-maintained): {user} follows "
          f"{len(following)} users: {following[:5]}")

    tstats = runtime.stats()
    print(f"\ntrigger runtime: {tstats['activations']} activations, "
          f"{tstats['coalesced']} coalesced by flow control, "
          f"{tstats['action_errors']} action errors")
    for name, js in tstats["jobs"].items():
        print(f"  {name:14s} activations={js['activations']:4d} "
              f"suppressed={js['suppressed']:4d}")


if __name__ == "__main__":
    main()
