#!/usr/bin/env python
"""Realtime analytics with chained triggers (§IV, Fig. 4 left).

The paper motivates Sedna with Facebook-style realtime analytics: raw
events arrive continuously and dashboards must reflect them within
seconds.  This example builds a three-stage trigger pipeline over the
public API:

  events table --(Trigger A: sessionize)--> counts table
  counts table --(Trigger C: top-k)-------> trending table

plus a Listing-1 style *iterative* job with a Filter stop condition
(the paper's "Domino task"): repeatedly halve a numeric value until it
converges, the loop body being the trigger itself.

Usage::

    python examples/realtime_analytics.py
"""

import random

from repro import SednaCluster, SednaConfig
from repro.triggers.api import (Action, DataHooks, Filter, Job, TriggerInput,
                                TriggerOutput)
from repro.triggers.runtime import TriggerRuntime


class CountAction(Action):
    """Stage A: fold raw page-view events into per-page counters.

    Events are immutable records under distinct keys ("/page/3#17"):
    rewriting one key would let the Dirty-column design coalesce
    intermediate values away (§IV.B discards stale updates by design),
    which is correct for state but lossy for event streams.
    """

    def __init__(self):
        self.counts = {}

    def action(self, key, values, result):
        page = key.key.split("#", 1)[0]
        self.counts[page] = self.counts.get(page, 0) + 1
        result.write(page, self.counts[page], table="counts")


class TopKAction(Action):
    """Stage C: maintain the global top-5 trending pages."""

    K = 5

    def __init__(self):
        self.latest = {}

    def action(self, key, values, result):
        for count in values:
            self.latest[key.key] = count
        top = sorted(self.latest.items(), key=lambda kv: (-kv[1], kv[0]))
        result.write("top", [page for page, _c in top[: self.K]],
                     table="trending")


class HalveAction(Action):
    """The Domino loop body: write value // 2 back to the same table."""

    def action(self, key, values, result):
        for value in values:
            result.write(key.key, value // 2, table="loop")


class ConvergedFilter(Filter):
    """Listing-1 style stop condition: halt when the value stops
    changing (the assert function compares old and new, §IV.D)."""

    def check(self, old_key, old_value, new_key, new_value):
        return old_value != new_value


def main() -> None:
    print("Booting the analytics cluster...")
    cluster = SednaCluster(
        n_nodes=4, zk_size=3,
        config=SednaConfig(num_vnodes=64, scan_interval=0.02,
                           trigger_interval=0.05))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()

    # ------------------------------------------------------------------
    # Pipeline A -> C (Fig. 4 left: A's output push-forwards C).
    # ------------------------------------------------------------------
    runtime.submit(Job("sessionize").with_action(CountAction())
                   .monitor(DataHooks(dataset="analytics", table="events"))
                   .output_to(TriggerOutput("analytics", "counts")))
    runtime.submit(Job("top-k").with_action(TopKAction())
                   .monitor(DataHooks(dataset="analytics", table="counts"))
                   .output_to(TriggerOutput("analytics", "trending")))

    client = cluster.client("event-source")
    rng = random.Random(3)
    pages = [f"/page/{i}" for i in range(12)]
    weights = [2 ** (-i / 2) for i in range(12)]  # skewed popularity

    def event_stream():
        for n in range(400):
            page = rng.choices(pages, weights)[0]
            yield from client.write_latest(
                f"{page}#{n}", f"view-{n}", table="events",
                dataset="analytics")
            yield cluster.sim.timeout(0.01)
        return True

    print("streaming 400 page-view events...")
    cluster.run(event_stream())
    cluster.settle(1.0)

    def read_dashboard():
        trending = yield from client.read_latest("top", table="trending",
                                                 dataset="analytics")
        counts = {}
        for page in (trending or []):
            counts[page] = yield from client.read_latest(
                page, table="counts", dataset="analytics")
        return trending, counts

    trending, counts = cluster.run(read_dashboard())
    print("\ntrending dashboard (trigger-maintained, seconds-fresh):")
    for rank, page in enumerate(trending or [], 1):
        print(f"  {rank}. {page:12s} {counts[page]} views")

    # ------------------------------------------------------------------
    # The iterative Domino task with a stop-condition filter.
    # ------------------------------------------------------------------
    h1 = DataHooks(dataset="analytics", table="loop")
    f1 = ConvergedFilter()
    i1 = TriggerInput(h1, f1)
    o1 = TriggerOutput("analytics", "loop")
    loop_job = Job("halver")
    loop_job.set_action_class(HalveAction, i1, o1)
    runtime.submit(loop_job)
    loop_job.schedule(timeout=60.0)

    def kick_loop():
        yield from client.write_latest("x", 1024, table="loop",
                                       dataset="analytics")
        return True

    print("\nDomino task: halve 1024 until converged "
          "(stop condition = Filter on old/new)...")
    cluster.run(kick_loop())
    cluster.settle(10.0)

    def read_loop():
        return (yield from client.read_latest("x", table="loop",
                                              dataset="analytics"))

    final = cluster.run(read_loop())
    print(f"  converged value: {final} after {loop_job.activations} "
          f"iterations ({loop_job.filtered} events stopped by the filter)")

    tstats = runtime.stats()
    print(f"\ntrigger totals: {tstats['activations']} activations, "
          f"{tstats['coalesced']} coalesced by flow control")


if __name__ == "__main__":
    main()
