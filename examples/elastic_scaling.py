#!/usr/bin/env python
"""Incremental scalability (Table I) — grow the cluster at runtime.

The paper's headline for partitioning is *incremental scalability*:
"modern storage system needs the ability of managing more servers to
provide scalable storage and computing power" (§II.A.4).  This example
starts small, loads data, then adds servers one at a time while the
cluster keeps serving:

1. boot 3 nodes, load 300 keys;
2. join two more nodes live — each runs the §III.D protocol (ephemeral
   registration, concurrent vnode acquisition, data transfer from the
   previous owners);
3. run the data-balance manager until the vnode spread levels out;
4. run anti-entropy to certify replica convergence;
5. verify every key is still readable and balance improved.

Usage::

    python examples/elastic_scaling.py
"""

from repro import SednaCluster, SednaConfig
from repro.core.antientropy import AntiEntropyManager
from repro.core.gc import GarbageCollector
from repro.core.node import SednaNode
from repro.core.rebalance import Rebalancer
from repro.persistence.disk import SimDisk


def vnode_counts(cluster):
    ring = next(iter(cluster.nodes.values())).cache.ring
    return {name: len(ring.vnodes_of(name))
            for name in cluster.node_names}


def key_counts(cluster):
    return {name: len(node.store) for name, node in cluster.nodes.items()}


def main() -> None:
    print("Booting 3 nodes (60 virtual nodes)...")
    cluster = SednaCluster(
        n_nodes=3, zk_size=3,
        config=SednaConfig(num_vnodes=60, imbalance_push_interval=0.5,
                           lease_base=0.5))
    cluster.start()
    client = cluster.client("loader")

    def load():
        for i in range(300):
            yield from client.write_latest(f"key{i:04d}", f"value{i}")
        return True

    cluster.run(load())
    print(f"loaded 300 keys; stored rows per node: {key_counts(cluster)}")
    print(f"vnodes per node: {vnode_counts(cluster)}\n")

    # ------------------------------------------------------------------
    # Live joins: two new servers arrive.
    # ------------------------------------------------------------------
    for new_name in ("node3", "node4"):
        print(f"joining {new_name} (concurrent vnode acquisition + "
              f"data transfer)...")
        disk = SimDisk()
        newcomer = SednaNode(cluster.sim, cluster.network, new_name,
                             cluster.ensemble.names, cluster.config,
                             cluster.zk_config, disk=disk)
        cluster.nodes[new_name] = newcomer
        cluster.disks[new_name] = disk
        cluster.node_names.append(new_name)
        proc = cluster.sim.process(newcomer.join())
        cluster.sim.run(until=proc)
        cluster.settle(1.5)
        print(f"  vnodes now: {vnode_counts(cluster)}")

    # ------------------------------------------------------------------
    # Balance pass: even out whatever the join race left uneven.
    # ------------------------------------------------------------------
    print("\nrunning the data-balance manager...")
    rebalancer = Rebalancer(cluster.nodes["node0"], interval=0.5,
                            threshold=1, max_moves_per_pass=6)
    rebalancer.start()
    cluster.settle(20.0)
    rebalancer.stop()
    counts = vnode_counts(cluster)
    print(f"  after {rebalancer.moves} moves: {counts} "
          f"(spread {max(counts.values()) - min(counts.values())})")

    # ------------------------------------------------------------------
    # Anti-entropy certifies every replica converged after the churn.
    # ------------------------------------------------------------------
    print("\nrunning anti-entropy to converge replicas after the churn...")
    managers = [AntiEntropyManager(node, interval=0.5, vnodes_per_pass=60)
                for node in cluster.nodes.values()]
    for manager in managers:
        manager.start()
    cluster.settle(4.0)
    for manager in managers:
        manager.stop()
    pulled = sum(m.keys_pulled for m in managers)
    pushed = sum(m.keys_pushed for m in managers)
    print(f"  reconciled: {pulled} keys pulled, {pushed} pushed")

    # ------------------------------------------------------------------
    # Everything must still be there.
    # ------------------------------------------------------------------
    def verify():
        wrong = 0
        for i in range(300):
            value = yield from client.read_latest(f"key{i:04d}")
            if value != f"value{i}":
                wrong += 1
        return wrong

    wrong = cluster.run(verify())
    print(f"\nverification: {300 - wrong}/300 keys correct after scaling "
          f"from 3 to 5 nodes")
    print(f"rows per node before GC: {key_counts(cluster)}")

    # ------------------------------------------------------------------
    # Reclaim orphaned replicas left behind by the moves.
    # ------------------------------------------------------------------
    print("\nrunning the orphan-replica garbage collector...")
    gcs = [GarbageCollector(node, interval=0.5, vnodes_per_pass=60)
           for node in cluster.nodes.values()]
    for gc in gcs:
        gc.start()
    cluster.settle(5.0)
    for gc in gcs:
        gc.stop()
    print(f"  dropped {sum(gc.rows_dropped for gc in gcs)} orphaned rows "
          f"(pushed {sum(gc.rows_pushed for gc in gcs)} first)")
    print(f"rows per node after GC:  {key_counts(cluster)}")

    wrong = cluster.run(verify())
    print(f"post-GC verification: {300 - wrong}/300 keys correct")


if __name__ == "__main__":
    main()
