#!/usr/bin/env python
"""Quickstart: boot a Sedna cluster and use the §III.F APIs.

Runs a 9-server deployment (3 of them also hosting the ZooKeeper
sub-cluster, as in the paper's testbed), then exercises:

* ``write_latest`` / ``read_latest`` — lock-free last-write-wins;
* ``write_all`` / ``read_all`` — per-source value lists;
* the hierarchical data space (datasets and tables);
* the zero-hop smart client;
* a node crash with lazy read-driven recovery.

Everything runs on the deterministic simulated network, so the timings
printed are *simulated* milliseconds — reproducible across runs.

Usage::

    python examples/quickstart.py
"""

from repro import SednaCluster, SednaConfig
from repro.core.types import FullKey


def main() -> None:
    print("Booting Sedna: 9 real nodes + 3-member ZooKeeper sub-cluster...")
    cluster = SednaCluster(n_nodes=9, zk_size=3,
                           config=SednaConfig(num_vnodes=512))
    cluster.start()
    print(f"  up at simulated t={cluster.sim.now:.2f}s; "
          f"{cluster.config.num_vnodes} virtual nodes, "
          f"N={cluster.config.replicas} R={cluster.config.read_quorum} "
          f"W={cluster.config.write_quorum}\n")

    # ------------------------------------------------------------------
    # 1. Basic write/read through a thin client (coordinator on a node).
    # ------------------------------------------------------------------
    client = cluster.client("app")

    def basic():
        status = yield from client.write_latest("greeting", "hello, sedna")
        value = yield from client.read_latest("greeting")
        return status, value

    status, value = cluster.run(basic())
    print(f"write_latest('greeting') -> {status};"
          f" read_latest -> {value!r}")
    print(f"  write latency {client.write_latencies[-1]*1e3:.3f} ms, "
          f"read latency {client.read_latencies[-1]*1e3:.3f} ms (simulated)")

    # ------------------------------------------------------------------
    # 2. write_all: one element per source server (§III.F).
    # ------------------------------------------------------------------
    crawler_a = cluster.client("crawler-a")
    crawler_b = cluster.client("crawler-b")

    def multi_source():
        yield from crawler_a.write_all("user42/profile", "seen-by-a")
        yield from crawler_b.write_all("user42/profile", "seen-by-b")
        return (yield from crawler_a.read_all("user42/profile"))

    elements = cluster.run(multi_source())
    print("\nwrite_all from two crawlers; read_all returns the value list:")
    for el in elements:
        print(f"  source={el.source:10s} ts={el.timestamp:.3f} "
              f"value={el.value!r}")

    # ------------------------------------------------------------------
    # 3. Hierarchical data space: datasets and tables (§II.A, Fig. 5).
    # ------------------------------------------------------------------
    def hierarchical():
        yield from client.write_latest("k1", "in tweets", table="tweets",
                                       dataset="web")
        yield from client.write_latest("k1", "in users", table="users",
                                       dataset="web")
        t = yield from client.read_latest("k1", table="tweets", dataset="web")
        u = yield from client.read_latest("k1", table="users", dataset="web")
        return t, u

    t, u = cluster.run(hierarchical())
    print(f"\nsame key, two tables: web/tweets/k1={t!r}, web/users/k1={u!r}")

    # ------------------------------------------------------------------
    # 4. The zero-hop smart client (§VII).
    # ------------------------------------------------------------------
    smart = cluster.smart_client("fastpath")

    def zero_hop():
        yield from smart.connect()
        yield from smart.write_latest("direct", "no extra hop")
        return (yield from smart.read_latest("direct"))

    print(f"\nsmart client (zero-hop DHT): {cluster.run(zero_hop())!r}")
    print(f"  smart write {smart.write_latencies[-1]*1e3:.3f} ms vs thin "
          f"client {client.write_latencies[-1]*1e3:.3f} ms")

    # ------------------------------------------------------------------
    # 5. Crash a node; reads keep working and lazily repair (§III.C).
    # ------------------------------------------------------------------
    encoded = FullKey.of("greeting").encoded()
    print(f"\nreplicas of 'greeting' before crash: "
          f"{cluster.total_replicas_of(encoded)}")
    victim = next(name for name, node in cluster.nodes.items()
                  if encoded in node.store)
    cluster.crash_node(victim)
    print(f"crashed {victim} (a replica holder); waiting for its "
          f"ZooKeeper session to expire...")
    cluster.settle(5.0)

    def read_after_crash():
        return (yield from client.read_latest("greeting"))

    print(f"read_latest after crash -> {cluster.run(read_after_crash())!r}")
    cluster.settle(3.0)  # async re-duplication finishes
    print(f"replicas of 'greeting' after lazy recovery: "
          f"{cluster.total_replicas_of(encoded)}")

    stats = cluster.stats()
    recoveries = sum(n["recoveries"] for n in stats["nodes"])
    print(f"\ncluster totals: {stats['total_keys']} stored rows, "
          f"{recoveries} vnode recoveries, "
          f"{stats['network']['delivered']:,} messages delivered")


if __name__ == "__main__":
    main()
