#!/usr/bin/env python
"""Failure handling end to end (§III.C–D): crashes, lazy recovery,
persistence strategies, and whole-cluster power loss.

Demonstrates the paper's failure story on the public API:

1. a replica holder crashes; reads keep answering from the surviving
   quorum while the dead node's ZooKeeper session expires;
2. the next reads *lazily* re-duplicate the lost replicas and rewrite
   the mapping ("Recovery work will be started when we read or write
   data that was stored in this real node");
3. the crashed node restarts, rejoins and serves again;
4. with the WAL persistence strategy, even a whole-cluster power
   outage loses nothing ("we can still recover the data from lost by
   the periodic data flushing").

Usage::

    python examples/failure_recovery.py
"""

from repro import SednaCluster, SednaConfig
from repro.core.types import FullKey
from repro.zk.server import ZkConfig


def replica_histogram(cluster, n_keys):
    """How many live copies each key has right now."""
    histogram = {}
    for i in range(n_keys):
        encoded = FullKey.of(f"k{i}").encoded()
        count = cluster.total_replicas_of(encoded)
        histogram[count] = histogram.get(count, 0) + 1
    return dict(sorted(histogram.items()))


def main() -> None:
    print("Booting a 5-node cluster with WAL persistence...")
    cluster = SednaCluster(
        n_nodes=5, zk_size=3,
        config=SednaConfig(num_vnodes=64, persistence="wal"),
        zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    client = cluster.client("app")
    n_keys = 40

    def seed():
        for i in range(n_keys):
            yield from client.write_latest(f"k{i}", f"v{i}")
        return True

    cluster.run(seed())
    print(f"seeded {n_keys} keys; replica histogram "
          f"(copies -> keys): {replica_histogram(cluster, n_keys)}")

    # ------------------------------------------------------------------
    # 1-2. Crash one node; lazy read-driven recovery.
    # ------------------------------------------------------------------
    victim = "node2"
    cluster.crash_node(victim)
    print(f"\ncrashed {victim}.")
    print(f"  immediately after: {replica_histogram(cluster, n_keys)}")
    cluster.settle(4.0)
    leader = cluster.ensemble.leader()
    alive = leader.tree.get_children("/sedna/real_nodes")
    print(f"  ZooKeeper session expired; live real nodes: {alive}")

    def touch_all():
        values = []
        for i in range(n_keys):
            values.append((yield from client.read_latest(f"k{i}")))
        return values

    values = cluster.run(touch_all())
    missing = [i for i, v in enumerate(values) if v != f"v{i}"]
    print(f"  reads after the crash: {n_keys - len(missing)}/{n_keys} "
          f"correct (quorum of survivors)")

    cluster.settle(3.0)   # async re-duplication tasks
    cluster.run(touch_all())
    cluster.settle(3.0)
    print(f"  after lazy recovery:  {replica_histogram(cluster, n_keys)}")
    recoveries = sum(n.recoveries for n in cluster.nodes.values())
    print(f"  vnode recoveries performed: {recoveries}")

    # ------------------------------------------------------------------
    # 3. The dead node returns.
    # ------------------------------------------------------------------
    cluster.restart_node(victim)
    cluster.settle(1.0)
    print(f"\n{victim} restarted; recovered "
          f"{len(cluster.nodes[victim].store)} rows from its WAL and "
          f"rejoined with "
          f"{len(cluster.nodes[victim].cache.ring.vnodes_of(victim))} vnodes")

    # ------------------------------------------------------------------
    # 4. Whole-cluster power loss.
    # ------------------------------------------------------------------
    print("\nsimulating a whole-cluster power outage...")
    for name in cluster.node_names:
        cluster.crash_node(name)
    cluster.settle(5.0)
    for name in cluster.node_names:
        cluster.restart_node(name)
    cluster.settle(2.0)

    survivor = cluster.client("post-outage")

    def read_back():
        ok = 0
        for i in range(n_keys):
            value = yield from survivor.read_latest(f"k{i}")
            if value == f"v{i}":
                ok += 1
        return ok

    ok = cluster.run(read_back())
    print(f"after full restart from write-ahead logs: {ok}/{n_keys} keys "
          f"intact")


if __name__ == "__main__":
    main()
