#!/usr/bin/env python
"""The ZooKeeper substrate on its own: coordination recipes.

Sedna's node management rides on a ZooKeeper sub-cluster (§III.D-E).
This example exercises that substrate directly with the four classic
coordination recipes — the same primitives (ephemeral + sequential
znodes, ordered quorum writes, watches) Sedna's membership uses:

* a distributed lock serializing three competing workers;
* leader election with fail-over when the leader's session dies;
* a barrier releasing three parties together;
* a distributed queue with competing consumers.

Usage::

    python examples/coordination.py
"""

from repro.net.latency import LanGigabit
from repro.net.simulator import AllOf, Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble
from repro.zk.recipes import (Barrier, DistributedLock, DistributedQueue,
                              LeaderElection)


def main() -> None:
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=13))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    print("3-member ZooKeeper ensemble up "
          f"(leader: {ens.leader().name})\n")

    # ------------------------------------------------------------------
    # Distributed lock.
    # ------------------------------------------------------------------
    print("-- distributed lock: 3 workers, one critical section --")
    timeline = []

    def worker(i):
        zk = ens.client(f"worker{i}")
        yield from zk.connect()
        lock = DistributedLock(zk, "/locks/db")
        yield from lock.acquire()
        timeline.append((sim.now, f"worker{i} enters"))
        yield sim.timeout(0.4)
        timeline.append((sim.now, f"worker{i} leaves"))
        yield from lock.release()

    procs = [sim.process(worker(i)) for i in range(3)]
    sim.run(until=AllOf(sim, procs))
    for t, event in timeline:
        print(f"  t={t:5.2f}s  {event}")

    # ------------------------------------------------------------------
    # Leader election with failover.
    # ------------------------------------------------------------------
    print("\n-- leader election: leader crashes, successor takes over --")
    events = []

    def candidate(name, crash_after=None):
        zk = ens.client(name)
        yield from zk.connect()
        election = LeaderElection(zk, "/election/service")
        yield from election.volunteer()
        events.append((sim.now, f"{name} is leader"))
        if crash_after is not None:
            yield sim.timeout(crash_after)
            events.append((sim.now, f"{name} crashes"))
            zk.crash()

    sim.process(candidate("primary", crash_after=1.0))

    def successor():
        yield sim.timeout(0.2)
        yield from candidate("standby")

    proc = sim.process(successor())
    sim.run(until=proc)
    for t, event in events:
        print(f"  t={t:5.2f}s  {event}")

    # ------------------------------------------------------------------
    # Barrier.
    # ------------------------------------------------------------------
    print("\n-- barrier: 3 parties released together --")
    releases = []

    def party(i):
        zk = ens.client(f"party{i}")
        yield from zk.connect()
        barrier = Barrier(zk, "/barriers/start", size=3)
        yield sim.timeout(0.5 * i)
        yield from barrier.enter()
        releases.append((sim.now, f"party{i} released"))

    procs = [sim.process(party(i)) for i in range(3)]
    sim.run(until=AllOf(sim, procs))
    for t, event in sorted(releases):
        print(f"  t={t:5.2f}s  {event}")

    # ------------------------------------------------------------------
    # Distributed queue.
    # ------------------------------------------------------------------
    print("\n-- queue: 1 producer, 2 competing consumers --")
    consumed = {}

    def producer():
        zk = ens.client("producer")
        yield from zk.connect()
        queue = DistributedQueue(zk, "/queues/jobs")
        for i in range(6):
            yield from queue.offer(f"job-{i}".encode())
            yield sim.timeout(0.1)

    def consumer(name):
        zk = ens.client(name)
        yield from zk.connect()
        queue = DistributedQueue(zk, "/queues/jobs")
        mine = []
        while True:
            item = yield from queue.take(timeout=1.5)
            if item is None:
                break
            mine.append(item.decode())
        consumed[name] = mine

    sim.process(producer())
    procs = [sim.process(consumer(f"consumer{i}")) for i in range(2)]
    sim.run(until=AllOf(sim, procs))
    total = []
    for name, items in sorted(consumed.items()):
        print(f"  {name}: {items}")
        total += items
    assert sorted(total) == [f"job-{i}" for i in range(6)]
    print("  every job consumed exactly once")


if __name__ == "__main__":
    main()
